(* The Compliance Auditing entry schema of Section 4.2:

     {(time,t), (op,X), (user,u), (data,d), (purpose,p), (authorized,a),
      (status,s)}

   op: 0 = disallow, 1 = allow.  status: 0 = exception-based access (the
   user manually entered the purpose — Break The Glass), 1 = regular. *)

type op =
  | Disallow
  | Allow

type status =
  | Exception_based
  | Regular

(* Optional provenance extension (after the MPI exemplar's audit tables):
   which session/request produced the record, which earlier operation it
   descends from, which fields it changed, and a per-record integrity hash
   over everything else.  Orthogonal to the paper's seven attributes — the
   relational export and Algorithm 5's SQL see exactly the same seven
   columns whether or not an entry carries provenance. *)
type provenance = {
  session : string;
  request : string;
  parent : int option; (* LSN of the operation this one descends from *)
  changed : string list; (* the fields the operation touched *)
  integrity : int; (* hash over the core fields + provenance-minus-this *)
}

type entry = {
  time : int;
  op : op;
  user : string;
  data : string;
  purpose : string;
  authorized : string;
  status : status;
  provenance : provenance option;
}

let entry ~time ~op ~user ~data ~purpose ~authorized ~status =
  { time; op; user; data; purpose; authorized; status; provenance = None }

let op_to_int = function Disallow -> 0 | Allow -> 1

let op_of_int = function
  | 0 -> Disallow
  | 1 -> Allow
  | n -> invalid_arg (Printf.sprintf "Audit_schema.op_of_int: %d" n)

let status_to_int = function Exception_based -> 0 | Regular -> 1

let status_of_int = function
  | 0 -> Exception_based
  | 1 -> Regular
  | n -> invalid_arg (Printf.sprintf "Audit_schema.status_of_int: %d" n)

let attr_time = Vocabulary.Audit_attrs.time
let attr_op = Vocabulary.Audit_attrs.op
let attr_user = Vocabulary.Audit_attrs.user
let attr_data = Vocabulary.Audit_attrs.data
let attr_purpose = Vocabulary.Audit_attrs.purpose
let attr_authorized = Vocabulary.Audit_attrs.authorized
let attr_status = Vocabulary.Audit_attrs.status

(* Attribute order of the schema in the paper. *)
let attributes =
  [ attr_time; attr_op; attr_user; attr_data; attr_purpose; attr_authorized; attr_status ]

(* The A default of Algorithm 4: the projection the SQL analysis groups by. *)
let pattern_attributes = [ attr_data; attr_purpose; attr_authorized ]

let relational_columns =
  [ (attr_time, Relational.Value.T_int);
    (attr_op, Relational.Value.T_int);
    (attr_user, Relational.Value.T_string);
    (attr_data, Relational.Value.T_string);
    (attr_purpose, Relational.Value.T_string);
    (attr_authorized, Relational.Value.T_string);
    (attr_status, Relational.Value.T_int);
  ]

let relational_schema () =
  Relational.Schema.of_list
    (List.map (fun (n, ty) -> Relational.Schema.column n ty) relational_columns)

let to_row e : Relational.Row.t =
  [| Relational.Value.Int e.time;
     Relational.Value.Int (op_to_int e.op);
     Relational.Value.Str e.user;
     Relational.Value.Str e.data;
     Relational.Value.Str e.purpose;
     Relational.Value.Str e.authorized;
     Relational.Value.Int (status_to_int e.status);
  |]

(* Rows carry the paper's seven attributes only: provenance does not
   travel through the relational export. *)
let of_row (row : Relational.Row.t) : entry =
  let open Relational in
  let int_at i =
    match Value.as_int (Row.get row i) with
    | Some v -> v
    | None -> invalid_arg "Audit_schema.of_row: expected integer"
  in
  let str_at i =
    match Value.as_string (Row.get row i) with
    | Some v -> v
    | None -> invalid_arg "Audit_schema.of_row: expected string"
  in
  { time = int_at 0;
    op = op_of_int (int_at 1);
    user = str_at 2;
    data = str_at 3;
    purpose = str_at 4;
    authorized = str_at 5;
    status = status_of_int (int_at 6);
    provenance = None;
  }

(* Association-list view: the entry as the paper's rule of seven RuleTerms. *)
let to_assoc e =
  [ (attr_time, string_of_int e.time);
    (attr_op, string_of_int (op_to_int e.op));
    (attr_user, e.user);
    (attr_data, e.data);
    (attr_purpose, e.purpose);
    (attr_authorized, e.authorized);
    (attr_status, string_of_int (status_to_int e.status));
  ]

(* Binary wire codec for durable storage (the WAL payload format).  CSV is
   the human interchange; the WAL needs something that round-trips any
   byte sequence a corrupted upstream might have handed us, so fields are
   length-prefixed rather than delimited:

     [op : 1] [status : 1] ([len : u16 LE] [bytes]) x5
                            for time (decimal), user, data, purpose, authorized *)

let add_field buffer s =
  let len = String.length s in
  if len > 0xFFFF then invalid_arg "Audit_schema.to_wire: field longer than 65535 bytes";
  Buffer.add_char buffer (Char.chr (len land 0xFF));
  Buffer.add_char buffer (Char.chr (len lsr 8));
  Buffer.add_string buffer s

let add_core buffer e =
  Buffer.add_char buffer (Char.chr (op_to_int e.op));
  Buffer.add_char buffer (Char.chr (status_to_int e.status));
  add_field buffer (string_of_int e.time);
  add_field buffer e.user;
  add_field buffer e.data;
  add_field buffer e.purpose;
  add_field buffer e.authorized

(* Provenance marker: entries without the extension end exactly after the
   five core fields; entries with it continue with 'P' and the extension
   fields.  [of_wire]'s total-parse discipline covers both shapes. *)
let provenance_marker = 'P'

let add_provenance_fields buffer p =
  add_field buffer p.session;
  add_field buffer p.request;
  add_field buffer (match p.parent with Some l -> string_of_int l | None -> "");
  let changed = List.length p.changed in
  if changed > 0xFFFF then invalid_arg "Audit_schema.to_wire: too many changed fields";
  Buffer.add_char buffer (Char.chr (changed land 0xFF));
  Buffer.add_char buffer (Char.chr (changed lsr 8));
  List.iter (add_field buffer) p.changed

(* What the per-record integrity hash commits to: the canonical core
   serialization plus every provenance field except the hash itself. *)
let integrity_preimage e p =
  let buffer = Buffer.create 96 in
  add_core buffer e;
  Buffer.add_char buffer provenance_marker;
  add_provenance_fields buffer p;
  Buffer.contents buffer

let integrity_hash e =
  match e.provenance with
  | None -> Durable.Chain.hash_string ""
  | Some p -> Durable.Chain.hash_string (integrity_preimage e p)

let verify_integrity e =
  match e.provenance with None -> true | Some p -> p.integrity = integrity_hash e

(* Attach (or replace) the provenance extension, computing the integrity
   hash over the final field values. *)
let with_provenance ~session ~request ?parent ?(changed = []) e =
  let p = { session; request; parent; changed; integrity = 0 } in
  let e = { e with provenance = Some p } in
  { e with provenance = Some { p with integrity = integrity_hash e } }

let to_wire e =
  let buffer = Buffer.create 64 in
  add_core buffer e;
  (match e.provenance with
  | None -> ()
  | Some p ->
    Buffer.add_char buffer provenance_marker;
    add_provenance_fields buffer p;
    add_field buffer (Durable.Chain.to_hex p.integrity));
  Buffer.contents buffer

(* Total parser: a WAL payload has already passed its CRC, so a [None]
   here means a codec mismatch, not bit rot — the caller decides whether
   that is fatal. *)
let of_wire s =
  let n = String.length s in
  let pos = ref 0 in
  let byte () =
    if !pos >= n then None
    else begin
      let b = Char.code s.[!pos] in
      incr pos;
      Some b
    end
  in
  let field () =
    if !pos + 2 > n then None
    else begin
      let len = Char.code s.[!pos] lor (Char.code s.[!pos + 1] lsl 8) in
      pos := !pos + 2;
      if !pos + len > n then None
      else begin
        let f = String.sub s !pos len in
        pos := !pos + len;
        Some f
      end
    end
  in
  let ( let* ) = Option.bind in
  let* op = byte () in
  let* status = byte () in
  let* time = field () in
  let* user = field () in
  let* data = field () in
  let* purpose = field () in
  let* authorized = field () in
  let* time = int_of_string_opt time in
  if op > 1 || status > 1 then None
  else begin
    let* provenance =
      if !pos = n then Some None
      else begin
        let* marker = byte () in
        if marker <> Char.code provenance_marker then None
        else
          let* session = field () in
          let* request = field () in
          let* parent_s = field () in
          let* parent =
            if parent_s = "" then Some None
            else Option.map Option.some (int_of_string_opt parent_s)
          in
          let* lo = byte () in
          let* hi = byte () in
          let count = lo lor (hi lsl 8) in
          let rec fields acc remaining =
            if remaining = 0 then Some (List.rev acc)
            else
              let* f = field () in
              fields (f :: acc) (remaining - 1)
          in
          let* changed = fields [] count in
          let* integrity_s = field () in
          let* integrity = Durable.Chain.of_hex integrity_s in
          Some (Some { session; request; parent; changed; integrity })
      end
    in
    if !pos <> n then None
    else
      Some
        { time;
          op = op_of_int op;
          user;
          data;
          purpose;
          authorized;
          status = status_of_int status;
          provenance;
        }
  end

let equal (a : entry) (b : entry) = a = b

let pp ppf e =
  Fmt.pf ppf "t%d %s %s data=%s purpose=%s authorized=%s %s" e.time
    (match e.op with Allow -> "allow" | Disallow -> "disallow")
    e.user e.data e.purpose e.authorized
    (match e.status with Regular -> "regular" | Exception_based -> "exception");
  match e.provenance with
  | None -> ()
  | Some p ->
    Fmt.pf ppf " [session=%s request=%s%a%s integrity=%s]" p.session p.request
      (fun ppf -> function None -> () | Some l -> Fmt.pf ppf " parent=%d" l)
      p.parent
      (match p.changed with [] -> "" | c -> " changed=" ^ String.concat ";" c)
      (Durable.Chain.to_hex p.integrity)
