(** The HDB Control Center: the single surface a deployment uses to stand
    up Active Enforcement + Compliance Auditing over a clinical database —
    define the vocabulary-backed rule base, patient consent and the
    column-to-category mapping, then run enforced queries and inspect the
    audit trail. *)

type t

val create : ?engine:Relational.Engine.t -> vocab:Vocabulary.Vocab.t -> unit -> t
val engine : t -> Relational.Engine.t
val rules : t -> Privacy_rules.t
val consent : t -> Consent.t
val logger : t -> Audit_logger.t
val enforcement : t -> Enforcement.t
val audit_store : t -> Audit_store.t

val admin_exec : t -> string -> Relational.Executor.outcome
(** Administrative SQL (DDL, loads); bypasses enforcement. *)

val permit : t -> data:string -> purpose:string -> authorized:string -> unit
val forbid : t -> data:string -> purpose:string -> authorized:string -> unit
val map_column : t -> table:string -> column:string -> category:string -> unit
val set_patient_column : t -> table:string -> column:string -> unit
val opt_out : t -> patient:string -> purpose:string -> data:string -> unit
val opt_in : t -> patient:string -> purpose:string -> data:string -> unit

val query_limits : t -> Relational.Budget.limits option
(** The resource limits applied to enforcement queries (None = ungoverned). *)

val set_query_limits : t -> Relational.Budget.limits option -> unit

val query :
  ?break_glass:bool ->
  ?budget:Relational.Budget.t ->
  t ->
  user:string ->
  role:string ->
  purpose:string ->
  string ->
  (Enforcement.outcome, Enforcement.error) result
(** An end-user query under enforcement.  With {!set_query_limits}
    configured (and no explicit [budget]), the query runs under a fresh
    {e strict} budget built from those limits: over quota it raises the
    typed {!Relational.Errors.Budget_exceeded} rather than returning
    silently truncated rows. *)

val audit_entries : t -> Audit_schema.entry list
