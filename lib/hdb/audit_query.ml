(* Query interface over the audit store: the Compliance Auditing side of
   HDB.  Answers "who saw what, when, and why" without touching the
   clinical tables. *)

type filter = {
  user : string option;
  data : string option;
  purpose : string option;
  authorized : string option;
  op : Audit_schema.op option;
  status : Audit_schema.status option;
  time_from : int option;
  time_to : int option;
  (* Provenance predicates: an entry without the extension never matches a
     set session/request filter. *)
  session : string option;
  request : string option;
}

let any =
  { user = None;
    data = None;
    purpose = None;
    authorized = None;
    op = None;
    status = None;
    time_from = None;
    time_to = None;
    session = None;
    request = None;
  }

let matches f (e : Audit_schema.entry) =
  let opt_eq extract = function None -> true | Some v -> extract e = v in
  let prov_eq extract = function
    | None -> true
    | Some v -> (
      match e.Audit_schema.provenance with None -> false | Some p -> extract p = v)
  in
  opt_eq (fun e -> e.Audit_schema.user) f.user
  && opt_eq (fun e -> e.Audit_schema.data) f.data
  && opt_eq (fun e -> e.Audit_schema.purpose) f.purpose
  && opt_eq (fun e -> e.Audit_schema.authorized) f.authorized
  && opt_eq (fun e -> e.Audit_schema.op) f.op
  && opt_eq (fun e -> e.Audit_schema.status) f.status
  && (match f.time_from with None -> true | Some t -> e.Audit_schema.time >= t)
  && (match f.time_to with None -> true | Some t -> e.Audit_schema.time <= t)
  && prov_eq (fun p -> p.Audit_schema.session) f.session
  && prov_eq (fun p -> p.Audit_schema.request) f.request

let run store f =
  List.rev
    (Audit_store.fold (fun acc e -> if matches f e then e :: acc else acc) [] store)

let count store f =
  Audit_store.fold (fun acc e -> if matches f e then acc + 1 else acc) 0 store

(* Disclosures of a data category in a time window — the typical
   compliance-officer question. *)
let disclosures store ~data ?time_from ?time_to () =
  run store { any with data = Some data; time_from; time_to; op = Some Audit_schema.Allow }

(* Exception-based accesses: the Break-The-Glass trail. *)
let exceptions store = run store { any with status = Some Audit_schema.Exception_based }

(* Everything one session (or one request) touched — the MPI-style
   request-tracing question the provenance extension exists for. *)
let by_session store session = run store { any with session = Some session }
let by_request store request = run store { any with request = Some request }

(* Entries whose stored per-record integrity hash no longer matches a
   recomputation: a non-empty answer means the in-memory trail disagrees
   with what the records themselves claim — the query-level counterpart of
   the WAL's chain verification. *)
let integrity_violations store =
  List.rev
    (Audit_store.fold
       (fun acc e -> if Audit_schema.verify_integrity e then acc else e :: acc)
       [] store)

(* Frequency summary keyed by a projection of the entry. *)
let summarize store ~key =
  let table = Hashtbl.create 64 in
  Audit_store.iter
    (fun e ->
      let k = key e in
      Hashtbl.replace table k (1 + Option.value (Hashtbl.find_opt table k) ~default:0))
    store;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let by_user store = summarize store ~key:(fun e -> e.Audit_schema.user)

let by_pattern store =
  summarize store ~key:(fun e ->
      (e.Audit_schema.data, e.Audit_schema.purpose, e.Audit_schema.authorized))
