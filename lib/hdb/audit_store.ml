(* Storage-efficient audit log (the "minimal impact, storage and performance
   efficient logs" of HDB Compliance Auditing).

   Columnar layout: times are an int vector; user/data/purpose/authorized are
   dictionary-encoded int vectors (audit logs repeat a small set of strings
   endlessly); op and status are bit-packed.  [naive_bytes]/[encoded_bytes]
   feed the storage-efficiency experiment (E6). *)

type dict = {
  ids : (string, int) Hashtbl.t;
  mutable strings : string array;
  mutable count : int;
}

let dict_create () = { ids = Hashtbl.create 64; strings = [||]; count = 0 }

let dict_intern d s =
  match Hashtbl.find_opt d.ids s with
  | Some id -> id
  | None ->
    let id = d.count in
    if id >= Array.length d.strings then begin
      let capacity = max 16 (2 * Array.length d.strings) in
      let strings = Array.make capacity "" in
      Array.blit d.strings 0 strings 0 d.count;
      d.strings <- strings
    end;
    d.strings.(id) <- s;
    d.count <- d.count + 1;
    Hashtbl.add d.ids s id;
    id

let dict_get d id = d.strings.(id)

type int_vec = {
  mutable data : int array;
  mutable len : int;
}

let vec_create () = { data = [||]; len = 0 }

let vec_push v x =
  if v.len >= Array.length v.data then begin
    let capacity = max 64 (2 * Array.length v.data) in
    let data = Array.make capacity 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

type bitvec = {
  mutable bits : Bytes.t;
  mutable blen : int;
}

let bitvec_create () = { bits = Bytes.create 0; blen = 0 }

let bitvec_push b x =
  let byte = b.blen / 8 in
  if byte >= Bytes.length b.bits then begin
    let capacity = max 16 (2 * Bytes.length b.bits) in
    let bits = Bytes.make capacity '\000' in
    Bytes.blit b.bits 0 bits 0 (Bytes.length b.bits);
    b.bits <- bits
  end;
  if x then begin
    let current = Char.code (Bytes.get b.bits byte) in
    Bytes.set b.bits byte (Char.chr (current lor (1 lsl (b.blen mod 8))))
  end;
  b.blen <- b.blen + 1

let bitvec_get b i = Char.code (Bytes.get b.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

(* Provenance side column: one word per row (None for the common case), so
   the columnar core stays exactly as compact as before for trails without
   the extension. *)
type prov_vec = {
  mutable items : Audit_schema.provenance option array;
  mutable plen : int;
}

let prov_create () = { items = [||]; plen = 0 }

let prov_push v x =
  if v.plen >= Array.length v.items then begin
    let capacity = max 64 (2 * Array.length v.items) in
    let items = Array.make capacity None in
    Array.blit v.items 0 items 0 v.plen;
    v.items <- items
  end;
  v.items.(v.plen) <- x;
  v.plen <- v.plen + 1

type t = {
  users : dict;
  datas : dict;
  purposes : dict;
  authorizeds : dict;
  times : int_vec;
  user_ids : int_vec;
  data_ids : int_vec;
  purpose_ids : int_vec;
  authorized_ids : int_vec;
  ops : bitvec;
  statuses : bitvec;
  provenances : prov_vec;
  (* Write-ahead durability (optional): every append is framed into the
     log before touching the columns, so after a crash the recovered WAL
     prefix is always a prefix of what this store held. *)
  mutable log : Durable.Log.t option;
}

let create () =
  { users = dict_create ();
    datas = dict_create ();
    purposes = dict_create ();
    authorizeds = dict_create ();
    times = vec_create ();
    user_ids = vec_create ();
    data_ids = vec_create ();
    purpose_ids = vec_create ();
    authorized_ids = vec_create ();
    ops = bitvec_create ();
    statuses = bitvec_create ();
    provenances = prov_create ();
    log = None;
  }

let length t = t.times.len

(* Column update alone — shared by the public append (which logs first)
   and recovery replay (whose entries are already in the log). *)
let append_mem t (e : Audit_schema.entry) =
  vec_push t.times e.time;
  vec_push t.user_ids (dict_intern t.users e.user);
  vec_push t.data_ids (dict_intern t.datas e.data);
  vec_push t.purpose_ids (dict_intern t.purposes e.purpose);
  vec_push t.authorized_ids (dict_intern t.authorizeds e.authorized);
  bitvec_push t.ops (e.op = Audit_schema.Allow);
  bitvec_push t.statuses (e.status = Audit_schema.Regular);
  prov_push t.provenances e.provenance

let append t (e : Audit_schema.entry) =
  (match t.log with
  | Some log -> ignore (Durable.Log.append log (Audit_schema.to_wire e))
  | None -> ());
  append_mem t e

let get t i : Audit_schema.entry =
  if i < 0 || i >= length t then invalid_arg "Audit_store.get: index out of bounds";
  { Audit_schema.time = t.times.data.(i);
    op = (if bitvec_get t.ops i then Audit_schema.Allow else Audit_schema.Disallow);
    user = dict_get t.users t.user_ids.data.(i);
    data = dict_get t.datas t.data_ids.data.(i);
    purpose = dict_get t.purposes t.purpose_ids.data.(i);
    authorized = dict_get t.authorizeds t.authorized_ids.data.(i);
    status = (if bitvec_get t.statuses i then Audit_schema.Regular else Audit_schema.Exception_based);
    provenance = t.provenances.items.(i);
  }

let iter f t =
  for i = 0 to length t - 1 do
    f (get t i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun e -> acc := f !acc e) t;
  !acc

let to_list t = List.rev (fold (fun acc e -> e :: acc) [] t)

let append_all t entries = List.iter (append t) entries

let of_entries entries =
  let t = create () in
  append_all t entries;
  t

(* --- durability --- *)

let log t = t.log

let attach_log t log = t.log <- Some log

(* Base LSN of the attached log (0 without one): the store's first entry
   sits at this LSN, so entry [i] is LSN [base + i]. *)
let base_lsn t =
  match t.log with
  | Some log -> Durable.Log.next_lsn log - length t
  | None -> 0

let lsn t = base_lsn t + length t

let sync t = Option.iter Durable.Log.sync t.log

(* Replay a recovered log into [t] (assumed fresh), then attach it so new
   appends are write-ahead.  Payloads that fail to decode are counted —
   they passed their CRC, so a non-zero count means a codec mismatch, and
   the caller should treat the trail as degraded. *)
let restore t log =
  let recovery = Durable.Log.open_or_recover log in
  let undecodable = ref 0 in
  List.iter
    (fun payload ->
      match Audit_schema.of_wire payload with
      | Some e -> append_mem t e
      | None -> incr undecodable)
    recovery.Durable.Recovery.entries;
  t.log <- Some log;
  (recovery, !undecodable)

let open_durable log =
  let t = create () in
  let recovery, undecodable = restore t log in
  (t, recovery, undecodable)

(* Fold the whole store into a snapshot image and truncate the WAL. *)
let checkpoint t =
  match t.log with
  | None -> ()
  | Some log ->
    let entries = fold (fun acc e -> Audit_schema.to_wire e :: acc) [] t in
    Durable.Log.checkpoint log ~entries:(List.rev entries)

(* Keep the WAL bounded: the log compacts itself mid-append once it holds
   [policy]-many records/bytes, snapshotting the store's contents at that
   moment.  Safe because appends are write-ahead (log first, columns
   after): when the trigger fires, the columns hold exactly the state the
   WAL covers, so the image neither misses nor anticipates a record. *)
let enable_auto_checkpoint ?(policy = Durable.Log.checkpoint_every ~records:1024 ()) t =
  match t.log with
  | None -> ()
  | Some log ->
    Durable.Log.set_auto_checkpoint log policy (fun () ->
        List.rev (fold (fun acc e -> Audit_schema.to_wire e :: acc) [] t))

(* Size of the flat row-store equivalent: every string stored inline. *)
let naive_bytes t =
  let word = 8 in
  fold
    (fun acc (e : Audit_schema.entry) ->
      acc + (3 * word) (* time, op, status *)
      + String.length e.user + String.length e.data + String.length e.purpose
      + String.length e.authorized + (4 * word) (* string headers *))
    0 t

(* Size of the encoded representation: id vectors + packed bits +
   dictionaries. *)
let encoded_bytes t =
  let word = 8 in
  let dict_bytes d =
    let sum = ref 0 in
    for i = 0 to d.count - 1 do
      sum := !sum + String.length d.strings.(i) + word
    done;
    !sum
  in
  let n = length t in
  let prov_bytes = ref (n * word) (* one word per row for the option column *) in
  for i = 0 to t.provenances.plen - 1 do
    match t.provenances.items.(i) with
    | None -> ()
    | Some p ->
      prov_bytes :=
        !prov_bytes + String.length p.session + String.length p.request + (4 * word)
        + List.fold_left (fun acc c -> acc + String.length c + word) 0 p.changed
  done;
  (* times + four id columns *)
  (5 * n * word)
  + (2 * ((n + 7) / 8))
  + dict_bytes t.users + dict_bytes t.datas + dict_bytes t.purposes
  + dict_bytes t.authorizeds
  + !prov_bytes

(* Export into a relational table (used by refinement's SQL analysis). *)
let to_table t ~database ~table_name =
  let tbl =
    match Relational.Database.find_table database table_name with
    | Some existing ->
      Relational.Table.truncate existing;
      existing
    | None ->
      Relational.Database.create_table database ~name:table_name
        ~schema:(Audit_schema.relational_schema ())
  in
  iter (fun e -> Relational.Table.insert tbl (Audit_schema.to_row e)) t;
  tbl
