(* HDB Active Enforcement: the middleware of Figure 5.

   A user query arrives with a context (user, role, chosen purpose).  The
   enforcer parses it, maps the touched columns to data categories, consults
   the privacy rules and patient consent, and rewrites the query so that only
   policy- and consent-consistent data is returned:

   - cell-level limitation: projections of forbidden categories are replaced
     by NULL (keeping the output shape);
   - row-level limitation: a patient-exclusion predicate is injected for
     patients who opted out of the (purpose, category) uses the query makes;
   - predicate columns of forbidden categories deny the whole query (masking
     cannot fix information flow through WHERE).

   Denied queries may be re-issued with [~break_glass:true]; the original
   query then runs unmasked but every disclosed category is logged as an
   exception-based access (status 0) — the raw material of PRIMA refinement. *)

open Relational

let log_src = Logs.Src.create "prima.enforcement" ~doc:"HDB Active Enforcement decisions"

module Log = (val Logs.src_log log_src : Logs.LOG)

type context = {
  user : string;
  role : string;
  purpose : string;
}

type t = {
  engine : Engine.t;
  rules : Privacy_rules.t;
  consent : Consent.t;
  categories : Category_map.t;
  logger : Audit_logger.t;
}

type outcome = {
  result : Executor.result_set;
  rewritten_sql : string;
  masked_columns : string list;
  excluded_patients : string list;
  break_glass : bool;
  disclosed_categories : string list;
}

type error =
  | Denied of string
  | Unsupported of string

let create ~engine ~rules ~consent ~categories ~logger =
  { engine; rules; consent; categories; logger }

let engine t = t.engine
let logger t = t.logger
let rules t = t.rules
let consent t = t.consent
let categories t = t.categories

(* Column references (qualifier, name) appearing anywhere in an
   expression. *)
let rec expr_columns (e : Sql_ast.expr) =
  match e with
  | Sql_ast.Col { qualifier; name } -> [ (qualifier, String.lowercase_ascii name) ]
  | Sql_ast.Lit _ | Sql_ast.Star -> []
  | Sql_ast.Unop (_, x) -> expr_columns x
  | Sql_ast.Binop (_, a, b) -> expr_columns a @ expr_columns b
  | Sql_ast.Agg { arg; _ } -> expr_columns arg
  | Sql_ast.Call (_, args) -> List.concat_map expr_columns args
  | Sql_ast.In_list { scrutinee; items; _ } ->
    expr_columns scrutinee @ List.concat_map expr_columns items
  | Sql_ast.In_select { scrutinee; _ } ->
    (* Subquery columns reference the subquery's own scope. *)
    expr_columns scrutinee
  | Sql_ast.Exists _ | Sql_ast.Scalar_select _ -> []
  | Sql_ast.Like { scrutinee; pattern; _ } -> expr_columns scrutinee @ expr_columns pattern
  | Sql_ast.Is_null { scrutinee; _ } -> expr_columns scrutinee
  | Sql_ast.Between { scrutinee; low; high; _ } ->
    expr_columns scrutinee @ expr_columns low @ expr_columns high

let dedupe xs = List.sort_uniq String.compare xs

exception Derived_in_scope

(* The base tables a FROM clause brings into scope, with their qualifiers
   and schemas.  Derived tables could smuggle clinical columns past the
   rewriter, so they are rejected under enforcement.
   @raise Derived_in_scope when the tree contains one. *)
type scope_entry = {
  table_name : string;
  qualifier : string;
  table_schema : Schema.t;
}

let rec scope_of t (ref : Sql_ast.table_ref) : scope_entry list =
  match ref with
  | Sql_ast.Table { name; alias } ->
    let table = Database.table (Engine.database t.engine) name in
    [ { table_name = Table.name table;
        qualifier = String.lowercase_ascii (Option.value alias ~default:(Table.name table));
        table_schema = Table.schema table;
      } ]
  | Sql_ast.Derived _ -> raise Derived_in_scope
  | Sql_ast.Join { left; right; on; _ } ->
    ignore on;
    scope_of t left @ scope_of t right

(* Resolve a column reference to the table it reads from.  Unqualified
   names resolve when exactly one in-scope table has the column; other
   cases are left to the engine's own resolution errors. *)
let table_of_column scope (qualifier, name) =
  match qualifier with
  | Some q ->
    List.find_opt
      (fun entry -> String.equal entry.qualifier (String.lowercase_ascii q))
      scope
  | None -> begin
    match List.filter (fun entry -> Schema.mem entry.table_schema name) scope with
    | [ entry ] -> Some entry
    | _ -> None
  end

let category_of_ref t scope column_ref =
  match table_of_column scope column_ref with
  | None -> None
  | Some entry ->
    Option.map
      (fun category -> (entry, category))
      (Category_map.category_of t.categories ~table:entry.table_name ~column:(snd column_ref))

let permitted t ctx category =
  Privacy_rules.permits t.rules ~data:category ~purpose:ctx.purpose ~authorized:ctx.role

(* All distinct patient ids present in a table, in first-seen order. *)
let patients_in_table t ~table ~patient_column =
  let tbl = Database.table (Engine.database t.engine) table in
  let idx = Schema.find_exn (Table.schema tbl) patient_column in
  let seen = Hashtbl.create 256 in
  Table.fold
    (fun acc row ->
      match Value.as_string (Row.get row idx) with
      | Some p when not (Hashtbl.mem seen p) ->
        Hashtbl.add seen p ();
        p :: acc
      | Some _ | None -> acc)
    [] tbl
  |> List.rev

let log_categories t ctx ~op ~status categories =
  let _ = Audit_logger.tick t.logger in
  List.iter
    (fun data ->
      Audit_logger.log t.logger ~op ~user:ctx.user ~data ~purpose:ctx.purpose
        ~authorized:ctx.role ~status)
    categories

(* Expand '*' projections against the full scope so masking can act per
   output column. *)
let expand_select_projections scope (projections : Sql_ast.projection list) =
  List.concat_map
    (fun (p : Sql_ast.projection) ->
      match p with
      | Sql_ast.All_columns ->
        List.concat_map
          (fun entry ->
            List.map
              (fun (c : Schema.column) ->
                Sql_ast.Proj
                  (Sql_ast.Col { qualifier = Some entry.qualifier; name = c.Schema.name },
                   Some c.Schema.name))
              (Schema.columns entry.table_schema))
          scope
      | Sql_ast.Proj _ -> [ p ])
    projections

(* The rewrite itself, pure of side effects: returns the rewritten select,
   masked output columns, excluded patients and disclosed categories, or the
   denial reason.  Handles any join tree of base tables; unmapped tables in
   scope contribute nothing to enforcement. *)
let rewrite t ctx (select : Sql_ast.select) =
  match select.Sql_ast.from with
  | None -> Ok (select, [], [], [])
  | Some from_clause ->
    match scope_of t from_clause with
    | exception Derived_in_scope ->
      Error (Unsupported "derived tables are not supported under enforcement")
    | scope ->
    let any_mapped =
      List.exists
        (fun entry -> Category_map.is_mapped_table t.categories ~table:entry.table_name)
        scope
    in
    if not any_mapped then Ok (select, [], [], [])
    else begin
      let projections = expand_select_projections scope select.Sql_ast.projections in
      (* Predicate-side categories (WHERE, GROUP BY, HAVING, ORDER BY and
         join conditions) must be permitted outright. *)
      let rec on_conditions (ref : Sql_ast.table_ref) =
        match ref with
        | Sql_ast.Table _ | Sql_ast.Derived _ -> []
        | Sql_ast.Join { left; right; on; _ } ->
          Option.to_list on @ on_conditions left @ on_conditions right
      in
      let predicate_refs =
        List.concat_map expr_columns
          (Option.to_list select.Sql_ast.where
          @ select.Sql_ast.group_by
          @ Option.to_list select.Sql_ast.having
          @ List.map fst select.Sql_ast.order_by
          @ on_conditions from_clause)
      in
      let forbidden_predicate_categories =
        List.filter_map
          (fun column_ref ->
            match category_of_ref t scope column_ref with
            | Some (_, category) when not (permitted t ctx category) -> Some category
            | Some _ | None -> None)
          predicate_refs
        |> dedupe
      in
      if forbidden_predicate_categories <> [] then
        Error
          (Denied
             (Printf.sprintf "predicate uses forbidden categories: %s"
                (String.concat ", " forbidden_predicate_categories)))
      else begin
        (* Cell-level masking of projections; track disclosures per table
           for consent. *)
        let masked = ref [] in
        let disclosed = ref [] in (* (table_name, category) *)
        let masked_projections =
          List.map
            (fun (p : Sql_ast.projection) ->
              match p with
              | Sql_ast.All_columns -> p
              | Sql_ast.Proj (e, alias) ->
                let refs = expr_columns e in
                let categories = List.filter_map (category_of_ref t scope) refs in
                let bad =
                  List.filter (fun (_, c) -> not (permitted t ctx c)) categories
                in
                if bad = [] then begin
                  disclosed :=
                    List.map (fun (entry, c) -> (entry.table_name, c)) categories
                    @ !disclosed;
                  p
                end
                else begin
                  masked := List.map snd refs @ !masked;
                  let name =
                    match alias, e with
                    | Some a, _ -> Some a
                    | None, Sql_ast.Col { name; _ } -> Some name
                    | None, _ -> None
                  in
                  Sql_ast.Proj (Sql_ast.Lit Value.Null, name)
                end)
            projections
        in
        let disclosed_pairs = List.sort_uniq compare !disclosed in
        let disclosed_categories = dedupe (List.map snd disclosed_pairs) in
        if disclosed_categories = [] && !masked <> [] then
          Error (Denied "no requested category is permitted for this role and purpose")
        else begin
          (* Row-level consent exclusion, per mapped table with a patient
             column, over the categories disclosed from that table. *)
          let exclusions =
            List.filter_map
              (fun entry ->
                match Category_map.patient_column t.categories ~table:entry.table_name with
                | None -> None
                | Some pc ->
                  let table_categories =
                    List.filter_map
                      (fun (tbl, c) ->
                        if String.equal tbl entry.table_name then Some c else None)
                      disclosed_pairs
                  in
                  if table_categories = [] then None
                  else begin
                    let patients =
                      patients_in_table t ~table:entry.table_name ~patient_column:pc
                    in
                    match
                      Consent.opted_out_patients t.consent ~patients ~purpose:ctx.purpose
                        ~categories:table_categories
                    with
                    | [] -> None
                    | excluded -> Some (entry, pc, excluded)
                  end)
              scope
          in
          let where =
            List.fold_left
              (fun where (entry, pc, excluded) ->
                let exclusion =
                  Sql_ast.In_list
                    { scrutinee =
                        Sql_ast.Col { qualifier = Some entry.qualifier; name = pc };
                      negated = true;
                      items = List.map (fun p -> Sql_ast.Lit (Value.Str p)) excluded;
                    }
                in
                match where with
                | Some w -> Some (Sql_ast.and_ w exclusion)
                | None -> Some exclusion)
              select.Sql_ast.where exclusions
          in
          let rewritten =
            { select with Sql_ast.projections = masked_projections; where }
          in
          let excluded_patients =
            dedupe (List.concat_map (fun (_, _, excluded) -> excluded) exclusions)
          in
          Ok (rewritten, dedupe !masked, excluded_patients, disclosed_categories)
        end
      end
    end

(* Categories the raw query would disclose, before any masking. *)
let requested_categories t (select : Sql_ast.select) =
  match select.Sql_ast.from with
  | None -> []
  | Some from_clause ->
    match scope_of t from_clause with
    | exception Derived_in_scope -> []
    | scope ->
    let projections = expand_select_projections scope select.Sql_ast.projections in
    List.concat_map
      (fun (p : Sql_ast.projection) ->
        match p with
        | Sql_ast.All_columns -> []
        | Sql_ast.Proj (e, _) ->
          List.filter_map
            (fun column_ref ->
              Option.map snd (category_of_ref t scope column_ref))
            (expr_columns e))
      projections
    |> dedupe

let run_query ?(break_glass = false) ?budget t ctx sql : (outcome, error) result =
  match Engine.parse sql with
  | Sql_ast.Select select -> begin
    match rewrite t ctx select with
    | Ok (rewritten, masked_columns, excluded_patients, disclosed) ->
      Log.debug (fun m ->
          m "permit %s/%s/%s: disclosed=[%s] masked=[%s] excluded=%d" ctx.user ctx.role
            ctx.purpose (String.concat "," disclosed)
            (String.concat "," masked_columns)
            (List.length excluded_patients));
      let result = Engine.query_select ?budget t.engine rewritten in
      if disclosed <> [] then
        log_categories t ctx ~op:Audit_schema.Allow ~status:Audit_schema.Regular disclosed;
      Ok
        { result;
          rewritten_sql = Sql_ast.select_to_sql rewritten;
          masked_columns;
          excluded_patients;
          break_glass = false;
          disclosed_categories = disclosed;
        }
    | Error (Denied reason) when break_glass ->
      (* Break The Glass: execute the original query, audit everything
         disclosed as exception-based. *)
      Log.info (fun m -> m "break-the-glass by %s/%s/%s (%s)" ctx.user ctx.role ctx.purpose reason);
      let disclosed = requested_categories t select in
      let result = Engine.query_select ?budget t.engine select in
      log_categories t ctx ~op:Audit_schema.Allow ~status:Audit_schema.Exception_based
        disclosed;
      Ok
        { result;
          rewritten_sql = Sql_ast.select_to_sql select;
          masked_columns = [];
          excluded_patients = [];
          break_glass = true;
          disclosed_categories = disclosed;
        }
    | Error (Denied reason) ->
      Log.info (fun m -> m "deny %s/%s/%s: %s" ctx.user ctx.role ctx.purpose reason);
      let requested = requested_categories t select in
      log_categories t ctx ~op:Audit_schema.Disallow ~status:Audit_schema.Regular requested;
      Error (Denied reason)
    | Error e -> Error e
  end
  | _ -> Error (Unsupported "enforcement applies to SELECT statements only")

let error_to_string = function
  | Denied reason -> "denied: " ^ reason
  | Unsupported reason -> "unsupported: " ^ reason
