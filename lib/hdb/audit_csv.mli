(** CSV interchange for audit trails: the seven Section 4.2 columns under a
    fixed header ([time,op,user,data,purpose,authorized,status], op/status
    numeric). *)

val header : string

exception Bad_csv of string

val entry_to_line : Audit_schema.entry -> string
val to_string : Audit_schema.entry list -> string

val of_string : string -> Audit_schema.entry list
(** @raise Bad_csv on a wrong header — and, with the offending 1-based
    line number in the message ["line N: ..."], on a row with the wrong
    column count, an unreadable numeric field, or an out-of-range
    op/status value. *)

val save : string -> Audit_schema.entry list -> unit
val load : string -> Audit_schema.entry list
val save_store : string -> Audit_store.t -> unit
val load_store : string -> Audit_store.t
