(** CSV interchange for audit trails: the seven Section 4.2 columns under a
    fixed header ([time,op,user,data,purpose,authorized,status], op/status
    numeric) — plus five optional provenance columns
    ([session,request,parent,changed,integrity]).  A file with the
    extended header may mix 7- and 12-column rows; [changed] is
    ';'-separated inside one field, [integrity] 16 lowercase hex digits,
    carried verbatim. *)

val header : string
val header_extended : string

exception Bad_csv of string

val entry_to_line : Audit_schema.entry -> string
(** 7 columns without provenance, 12 with. *)

val to_string : Audit_schema.entry list -> string
(** Uses the extended header iff any entry carries provenance. *)

val of_string : string -> Audit_schema.entry list
(** @raise Bad_csv on a wrong header — and, with the offending 1-based
    line number in the message ["line N: ..."], on a row with the wrong
    column count, an unreadable numeric field, an out-of-range op/status
    value, an unreadable parent LSN, or a malformed integrity hash. *)

val save : string -> Audit_schema.entry list -> unit
val load : string -> Audit_schema.entry list
val save_store : string -> Audit_store.t -> unit
val load_store : string -> Audit_store.t
