(* CSV interchange for audit trails: the seven Section 4.2 columns with a
   fixed header, so trails can leave one PRIMA deployment and enter
   another (or a spreadsheet). *)

let header = "time,op,user,data,purpose,authorized,status"

let expected_columns = String.split_on_char ',' header

exception Bad_csv of string

let entry_to_line (e : Audit_schema.entry) =
  Printf.sprintf "%d,%d,%s,%s,%s,%s,%d" e.Audit_schema.time
    (Audit_schema.op_to_int e.Audit_schema.op)
    (Relational.Csv.escape_field e.Audit_schema.user)
    (Relational.Csv.escape_field e.Audit_schema.data)
    (Relational.Csv.escape_field e.Audit_schema.purpose)
    (Relational.Csv.escape_field e.Audit_schema.authorized)
    (Audit_schema.status_to_int e.Audit_schema.status)

let to_string entries =
  String.concat "\n" (header :: List.map entry_to_line entries) ^ "\n"

let of_string text : Audit_schema.entry list =
  match Relational.Csv.parse_line_seq_numbered text with
  | [] -> []
  | (_, got_header) :: rows ->
    if List.map String.lowercase_ascii got_header <> expected_columns then
      raise
        (Bad_csv (Printf.sprintf "header must be %S, got %S" header
                    (String.concat "," got_header)));
    (* Blank lines parse as a single empty field; skip them. *)
    let rows = List.filter (fun (_, row) -> row <> [] && row <> [ "" ]) rows in
    List.map
      (fun (line, row) ->
        match row with
        | [ time; op; user; data; purpose; authorized; status ] -> begin
          match int_of_string_opt time, int_of_string_opt op, int_of_string_opt status with
          | Some time, Some op, Some status -> begin
            try
              Audit_schema.entry ~time ~op:(Audit_schema.op_of_int op) ~user ~data ~purpose
                ~authorized
                ~status:(Audit_schema.status_of_int status)
            with Invalid_argument why ->
              raise (Bad_csv (Printf.sprintf "line %d: %s" line why))
          end
          | _ ->
            raise
              (Bad_csv
                 (Printf.sprintf "line %d: unreadable numeric field in: %s" line
                    (String.concat "," row)))
        end
        | _ ->
          raise
            (Bad_csv
               (Printf.sprintf "line %d: expected %d columns, got %d: %s" line
                  (List.length expected_columns) (List.length row) (String.concat "," row))))
      rows

let save path entries =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string entries))

let load path : Audit_schema.entry list =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let save_store path store = save path (Audit_store.to_list store)

let load_store path : Audit_store.t = Audit_store.of_entries (load path)
