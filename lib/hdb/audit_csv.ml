(* CSV interchange for audit trails: the seven Section 4.2 columns with a
   fixed header, so trails can leave one PRIMA deployment and enter
   another (or a spreadsheet).

   Provenance travels through five optional extra columns
   (session,request,parent,changed,integrity).  A file whose header names
   them may mix rows with and without the extension (7 or 12 columns per
   row); a file with the plain 7-column header carries none.  [changed] is
   a ';'-separated list inside one (escaped) field; [integrity] is the
   16-hex-digit per-record hash, carried verbatim — a reader can audit it
   against a recomputation via [Audit_schema.verify_integrity]. *)

let header = "time,op,user,data,purpose,authorized,status"

let provenance_columns = "session,request,parent,changed,integrity"

let header_extended = header ^ "," ^ provenance_columns

let expected_columns = String.split_on_char ',' header

let expected_columns_extended = String.split_on_char ',' header_extended

exception Bad_csv of string

let core_to_line (e : Audit_schema.entry) =
  Printf.sprintf "%d,%d,%s,%s,%s,%s,%d" e.Audit_schema.time
    (Audit_schema.op_to_int e.Audit_schema.op)
    (Relational.Csv.escape_field e.Audit_schema.user)
    (Relational.Csv.escape_field e.Audit_schema.data)
    (Relational.Csv.escape_field e.Audit_schema.purpose)
    (Relational.Csv.escape_field e.Audit_schema.authorized)
    (Audit_schema.status_to_int e.Audit_schema.status)

let entry_to_line (e : Audit_schema.entry) =
  match e.Audit_schema.provenance with
  | None -> core_to_line e
  | Some p ->
    Printf.sprintf "%s,%s,%s,%s,%s,%s" (core_to_line e)
      (Relational.Csv.escape_field p.Audit_schema.session)
      (Relational.Csv.escape_field p.Audit_schema.request)
      (match p.Audit_schema.parent with Some l -> string_of_int l | None -> "")
      (Relational.Csv.escape_field (String.concat ";" p.Audit_schema.changed))
      (Durable.Chain.to_hex p.Audit_schema.integrity)

let to_string entries =
  let extended =
    List.exists (fun e -> e.Audit_schema.provenance <> None) entries
  in
  String.concat "\n"
    ((if extended then header_extended else header) :: List.map entry_to_line entries)
  ^ "\n"

let parse_core line row time op user data purpose authorized status =
  match int_of_string_opt time, int_of_string_opt op, int_of_string_opt status with
  | Some time, Some op, Some status -> begin
    try
      Audit_schema.entry ~time ~op:(Audit_schema.op_of_int op) ~user ~data ~purpose
        ~authorized
        ~status:(Audit_schema.status_of_int status)
    with Invalid_argument why -> raise (Bad_csv (Printf.sprintf "line %d: %s" line why))
  end
  | _ ->
    raise
      (Bad_csv
         (Printf.sprintf "line %d: unreadable numeric field in: %s" line
            (String.concat "," row)))

(* The five provenance columns of one extended row.  The integrity hash is
   carried verbatim (not recomputed): a malformed hex field is a parse
   error here; a well-formed hash that fails to verify is an integrity
   finding for [Audit_query.integrity_violations]. *)
let parse_provenance line core session request parent_s changed_s integrity_s =
  let parent =
    if parent_s = "" then None
    else
      match int_of_string_opt parent_s with
      | Some l -> Some l
      | None ->
        raise (Bad_csv (Printf.sprintf "line %d: unreadable parent LSN %S" line parent_s))
  in
  let changed = if changed_s = "" then [] else String.split_on_char ';' changed_s in
  let integrity =
    match Durable.Chain.of_hex integrity_s with
    | Some h -> h
    | None ->
      raise
        (Bad_csv
           (Printf.sprintf
              "line %d: malformed integrity hash %S (want 16 lowercase hex digits)" line
              integrity_s))
  in
  { core with
    Audit_schema.provenance =
      Some { Audit_schema.session; request; parent; changed; integrity };
  }

let of_string text : Audit_schema.entry list =
  match Relational.Csv.parse_line_seq_numbered text with
  | [] -> []
  | (_, got_header) :: rows ->
    let normalized = List.map String.lowercase_ascii got_header in
    let extended =
      if normalized = expected_columns then false
      else if normalized = expected_columns_extended then true
      else
        raise
          (Bad_csv
             (Printf.sprintf "header must be %S or %S, got %S" header header_extended
                (String.concat "," got_header)))
    in
    (* Blank lines parse as a single empty field; skip them. *)
    let rows = List.filter (fun (_, row) -> row <> [] && row <> [ "" ]) rows in
    List.map
      (fun (line, row) ->
        match row with
        | [ time; op; user; data; purpose; authorized; status ] ->
          parse_core line row time op user data purpose authorized status
        | [ time; op; user; data; purpose; authorized; status;
            session; request; parent; changed; integrity ]
          when extended ->
          let core = parse_core line row time op user data purpose authorized status in
          parse_provenance line core session request parent changed integrity
        | _ ->
          raise
            (Bad_csv
               (Printf.sprintf "line %d: expected %s columns, got %d: %s" line
                  (if extended then
                     Printf.sprintf "%d or %d" (List.length expected_columns)
                       (List.length expected_columns_extended)
                   else string_of_int (List.length expected_columns))
                  (List.length row) (String.concat "," row))))
      rows

let save path entries =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string entries))

let load path : Audit_schema.entry list =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let save_store path store = save path (Audit_store.to_list store)

let load_store path : Audit_store.t = Audit_store.of_entries (load path)
