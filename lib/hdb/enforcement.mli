(** HDB Active Enforcement: the query-rewriting middleware of Figure 5.

    A user query arrives with a context (user, role, chosen purpose).  The
    enforcer parses it, maps touched columns to data categories, consults
    the privacy rules and patient consent, and rewrites the query so that
    only policy- and consent-consistent data is returned:

    - cell-level limitation: projections of forbidden categories are
      replaced by NULL (keeping the output shape);
    - row-level limitation: a patient-exclusion predicate is injected for
      patients who opted out of the uses the query makes;
    - predicate columns of forbidden categories deny the whole query
      (masking cannot fix information flow through WHERE).

    Denied queries may be re-issued with [~break_glass:true]; the original
    query then runs unmasked and every disclosed category is logged as an
    exception-based access (status 0) — the raw material of PRIMA
    refinement. *)

type context = {
  user : string;
  role : string;  (** authorization category, a vocabulary value *)
  purpose : string;  (** chosen (or manually entered) purpose *)
}

type t

type outcome = {
  result : Relational.Executor.result_set;
  rewritten_sql : string;  (** what actually ran, for inspection *)
  masked_columns : string list;
  excluded_patients : string list;
  break_glass : bool;
  disclosed_categories : string list;
}

type error =
  | Denied of string
  | Unsupported of string

val create :
  engine:Relational.Engine.t ->
  rules:Privacy_rules.t ->
  consent:Consent.t ->
  categories:Category_map.t ->
  logger:Audit_logger.t ->
  t

val engine : t -> Relational.Engine.t
val logger : t -> Audit_logger.t
val rules : t -> Privacy_rules.t
val consent : t -> Consent.t
val categories : t -> Category_map.t

val rewrite :
  t ->
  context ->
  Relational.Sql_ast.select ->
  (Relational.Sql_ast.select * string list * string list * string list, error) result
(** The pure rewrite: [(rewritten, masked columns, excluded patients,
    disclosed categories)] or the denial.  Queries over unmapped tables
    pass through untouched. *)

val run_query :
  ?break_glass:bool ->
  ?budget:Relational.Budget.t ->
  t ->
  context ->
  string ->
  (outcome, error) result
(** Rewrite, execute, audit.  Non-SELECT statements are [Unsupported].
    [budget] governs the rewritten (or break-glass) execution; a strict
    budget that fires raises the typed
    {!Relational.Errors.Budget_exceeded} rather than returning silently
    truncated rows. *)

val error_to_string : error -> string
