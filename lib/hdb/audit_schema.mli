(** The Compliance Auditing entry schema (Section 4.2):

    {v {(time,t), (op,X), (user,u), (data,d), (purpose,p),
    (authorized,a), (status,s)} v}

    op: 0 = disallow, 1 = allow.  status: 0 = exception-based access (the
    user manually entered the purpose — Break The Glass), 1 = regular. *)

type op =
  | Disallow
  | Allow

type status =
  | Exception_based
  | Regular

(** Optional provenance extension (after the MPI exemplar's audit
    tables).  Orthogonal to the paper's seven attributes: the relational
    export and Algorithm 5's SQL see the same seven columns either way. *)
type provenance = {
  session : string;
  request : string;
  parent : int option;  (** LSN of the operation this one descends from *)
  changed : string list;  (** the fields the operation touched *)
  integrity : int;  (** hash over the core fields + provenance-minus-this *)
}

type entry = {
  time : int;  (** logical timestamp *)
  op : op;
  user : string;
  data : string;  (** data category, from the vocabulary *)
  purpose : string;
  authorized : string;  (** authorization category (role) *)
  status : status;
  provenance : provenance option;
}

val entry :
  time:int ->
  op:op ->
  user:string ->
  data:string ->
  purpose:string ->
  authorized:string ->
  status:status ->
  entry
(** An entry without provenance; use {!with_provenance} to attach it. *)

val with_provenance :
  session:string -> request:string -> ?parent:int -> ?changed:string list -> entry -> entry
(** Attach (or replace) the provenance extension, computing the integrity
    hash over the final field values ([changed] defaults to []). *)

val integrity_hash : entry -> int
(** The hash {!with_provenance} stores: over the canonical core
    serialization and every provenance field except the hash itself. *)

val verify_integrity : entry -> bool
(** [true] when the stored integrity hash matches a recomputation — and
    vacuously for entries without provenance. *)

val op_to_int : op -> int
val op_of_int : int -> op
(** @raise Invalid_argument outside {0, 1}. *)

val status_to_int : status -> int
val status_of_int : int -> status
(** @raise Invalid_argument outside {0, 1}. *)

val attr_time : string
val attr_op : string
val attr_user : string
val attr_data : string
val attr_purpose : string
val attr_authorized : string
val attr_status : string

val attributes : string list
(** Schema order as given in the paper. *)

val pattern_attributes : string list
(** The A default of Algorithm 4: (data, purpose, authorized). *)

val relational_columns : (string * Relational.Value.ty) list
val relational_schema : unit -> Relational.Schema.t
val to_row : entry -> Relational.Row.t

val of_row : Relational.Row.t -> entry
(** @raise Invalid_argument on rows that do not follow
    {!relational_schema}. *)

val to_assoc : entry -> (string * string) list
(** The entry as the paper's rule of seven RuleTerms (ints rendered as
    strings). *)

val to_wire : entry -> string
(** Binary WAL payload: length-prefixed fields, round-trips any bytes.
    Entries with provenance continue past the core fields with a ['P']
    marker and the extension fields; entries without end exactly after the
    core.
    @raise Invalid_argument on a field longer than 65535 bytes. *)

val of_wire : string -> entry option
(** Total inverse of {!to_wire}.  [None] is a codec mismatch: the payload
    already passed its checksum when it reached this parser. *)

val equal : entry -> entry -> bool
val pp : Format.formatter -> entry -> unit
