(* The HDB Control Center: the single surface a deployment uses to stand up
   Active Enforcement + Compliance Auditing over a clinical database — define
   the vocabulary-backed rule base, patient consent, the column-to-category
   mapping, then run enforced queries and inspect the audit trail. *)

type t = {
  engine : Relational.Engine.t;
  rules : Privacy_rules.t;
  consent : Consent.t;
  categories : Category_map.t;
  logger : Audit_logger.t;
  enforcement : Enforcement.t;
  mutable query_limits : Relational.Budget.limits option;
}

let create ?(engine = Relational.Engine.create ()) ~vocab () =
  let rules = Privacy_rules.create ~vocab in
  let consent = Consent.create ~vocab () in
  let categories = Category_map.create () in
  let logger = Audit_logger.create () in
  let enforcement = Enforcement.create ~engine ~rules ~consent ~categories ~logger in
  { engine; rules; consent; categories; logger; enforcement; query_limits = None }

let engine t = t.engine
let rules t = t.rules
let consent t = t.consent
let logger t = t.logger
let enforcement t = t.enforcement
let audit_store t = Audit_logger.store t.logger

(* Administrative SQL (DDL, loads) bypasses enforcement. *)
let admin_exec t sql = Relational.Engine.exec t.engine sql

let permit t ~data ~purpose ~authorized =
  Privacy_rules.add t.rules ~data ~purpose ~authorized ()

let forbid t ~data ~purpose ~authorized =
  Privacy_rules.add t.rules ~effect:Privacy_rules.Forbid ~data ~purpose ~authorized ()

let map_column t ~table ~column ~category =
  Category_map.set_category t.categories ~table ~column ~category

let set_patient_column t ~table ~column =
  Category_map.set_patient_column t.categories ~table ~column

let opt_out t ~patient ~purpose ~data =
  Consent.record t.consent ~patient ~purpose ~data Consent.Opt_out

let opt_in t ~patient ~purpose ~data =
  Consent.record t.consent ~patient ~purpose ~data Consent.Opt_in

let query_limits t = t.query_limits
let set_query_limits t limits = t.query_limits <- limits

(* Enforcement queries run under the configured limits as a strict budget:
   a user query over quota fails with the typed [Budget_exceeded] instead
   of silently returning a prefix of the rows — truncation is only a legal
   degradation for analysis queries, never for enforcement answers.  An
   explicit [budget] overrides the configured limits. *)
let query ?break_glass ?budget t ~user ~role ~purpose sql =
  let budget =
    match budget, t.query_limits with
    | Some _, _ -> budget
    | None, Some limits -> Some (Relational.Budget.create limits)
    | None, None -> None
  in
  Enforcement.run_query ?break_glass ?budget t.enforcement
    { Enforcement.user; role; purpose } sql

let audit_entries t = Audit_logger.entries t.logger
