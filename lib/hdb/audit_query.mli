(** Query interface over the audit store — the Compliance Auditing side of
    HDB: who saw what, when, and why. *)

type filter = {
  user : string option;
  data : string option;
  purpose : string option;
  authorized : string option;
  op : Audit_schema.op option;
  status : Audit_schema.status option;
  time_from : int option;  (** inclusive *)
  time_to : int option;  (** inclusive *)
  session : string option;
      (** provenance session id; entries without provenance never match *)
  request : string option;  (** provenance request id; likewise *)
}

val any : filter
(** Matches everything; override fields as needed. *)

val matches : filter -> Audit_schema.entry -> bool
val run : Audit_store.t -> filter -> Audit_schema.entry list
val count : Audit_store.t -> filter -> int

val disclosures :
  Audit_store.t -> data:string -> ?time_from:int -> ?time_to:int -> unit ->
  Audit_schema.entry list
(** Allowed accesses to a data category in a window — the typical
    compliance-officer question. *)

val exceptions : Audit_store.t -> Audit_schema.entry list
(** The Break-The-Glass trail. *)

val by_session : Audit_store.t -> string -> Audit_schema.entry list
val by_request : Audit_store.t -> string -> Audit_schema.entry list
(** Everything one session / one request touched (provenance tracing). *)

val integrity_violations : Audit_store.t -> Audit_schema.entry list
(** Entries whose stored per-record integrity hash does not match a
    recomputation; empty on an untampered trail. *)

val summarize : Audit_store.t -> key:(Audit_schema.entry -> 'k) -> ('k * int) list
(** Frequency summary by a projection of the entry, most frequent first. *)

val by_user : Audit_store.t -> (string * int) list

val by_pattern : Audit_store.t -> ((string * string * string) * int) list
(** Keyed by (data, purpose, authorized). *)
