(** The assembled PRIMA architecture of Figure 4.

    Wires Privacy Policy Definition (the HDB Control Center), Audit
    Management (the federation) and Policy Refinement together, and closes
    the loop: patterns accepted during refinement are installed both in the
    formal policy store P_PS and as Active Enforcement permit rules, so the
    corresponding accesses stop needing Break-The-Glass — privacy controls
    are "gradually and seamlessly" embedded into the clinical workflow.

    The loop is degraded-mode aware: consolidation runs through the
    fault-tolerant federation path and carries a {!Audit_mgmt.Health.t}
    report; coverage over a partial trail is labelled a lower bound; and
    {!refine} refuses to auto-accept patterns mined from a window whose
    completeness falls below the configured threshold. *)

type t

type storage = {
  audit_log : Durable.Log.t;
  quarantine_log : Durable.Log.t;
}
(** Durable backing for the two stateful components that must survive a
    crash: the clinical database's audit store and the federation's
    transit quarantine.  Each is an independent WAL + snapshot pair. *)

type recovery_report = {
  audit : Durable.Recovery.t;
  quarantine : Durable.Recovery.t;
  undecodable : int;  (** CRC-valid payloads that no longer decode *)
}

val create :
  ?training_minimum:int ->
  ?completeness_threshold:float ->
  ?config:Prima_core.Refinement.config ->
  ?storage:storage ->
  vocab:Vocabulary.Vocab.t ->
  p_ps:Prima_core.Policy.t ->
  unit ->
  t
(** Seeds the enforcement rule base from [p_ps] and registers the clinical
    database's audit store as the federation's first site.
    [completeness_threshold] (default 0.9) is the minimum consolidation
    completeness {!refine} accepts over a large window (see
    {!effective_threshold}).  With [storage], the durable state is
    opened-or-recovered before anything writes, and both logs stay
    attached so new writes are write-ahead. *)

val control : t -> Hdb.Control_center.t
val federation : t -> Audit_mgmt.Federation.t
val prima : t -> Prima_core.Prima.t

(** {1 Query governance}

    A resource budget applied to the refinement loop's pattern-extraction
    query (Algorithm 5).  When the budget fires, extraction degrades to a
    lower-bound pattern set and the epoch's coverage readings are labelled
    {!Prima_core.Coverage.Lower_bound} — the same discipline as a partial
    consolidation window. *)

val query_limits : t -> Relational.Budget.limits option
(** The budget currently applied to refinement queries (None = ungoverned). *)

val set_query_limits : t -> Relational.Budget.limits option -> unit
(** One knob for the whole system's SQL: the limits govern both the
    refinement extraction query (graceful degradation to a lower bound)
    and the enforcement query path ({!Hdb.Control_center.query}, strict —
    over quota raises the typed [Budget_exceeded]). *)

type governance = {
  limits : Relational.Budget.limits option;
  governed_epochs : int;  (** refinement epochs run under a budget *)
  degraded_epochs : int;  (** epochs whose extraction hit the budget *)
  last_budget_stats : Relational.Errors.budget_stats option;
      (** resources the most recent governed extraction consumed *)
  brownout_epochs : int;  (** refinement epochs run under a brownout grant *)
  shed_requests : int;  (** admitted-path requests shed at the gate *)
  classes : Audit_mgmt.Admission.class_stats list;
      (** per-budget-class admission counters; [[]] ungated *)
}

val governance : t -> governance

val completeness_threshold : t -> float
val set_completeness_threshold : t -> float -> unit

val effective_threshold : t -> float
(** The adaptive completeness floor {!refine} actually enforces:
    [threshold * n / (n + 25)] where [n] is the record count of the last
    consolidated window.  Small windows — where one stranded site swings
    completeness by tens of points — get a proportionally lower floor that
    converges to the configured threshold as the window grows. *)

val recovery : t -> recovery_report option
(** The crash-recovery reports from {!create} ([Some] iff [~storage] was
    given). *)

val tampered : t -> bool
(** Did opening the durable state detect tampering — a
    {!Durable.Recovery.Tamper_detected} verdict on either trail?  Implies
    {!durably_degraded}. *)

val durably_degraded : t -> bool
(** Did opening the durable state lose anything — a dropped WAL tail, a
    CRC-valid record that no longer decodes, or a tampered prefix?  While
    true, every coverage statement is labelled
    {!Prima_core.Coverage.Lower_bound} even over a nominally complete
    window. *)

val federation_degraded : t -> bool
(** Is any federation-side durable state damaged — a member site whose WAL
    recovery was lossy or tampered with the replay still pending, or a
    torn/tampered archive shard?  While true, coverage stays a lower
    bound: a degraded site's own record totals are not trustworthy. *)

val fully_verified : t -> bool
(** Neither {!durably_degraded} nor {!federation_degraded} — the
    [verified] input to coverage qualification. *)

val sync_durable : t -> unit
(** fsync every attached log: the central pair, each member site's WAL,
    and the archive's shards + manifest (each a no-op when absent). *)

val checkpoint_durable : t -> unit
(** Compact every attached log: snapshot current state and truncate the
    WALs (central pair, member site WALs, archive shards + manifest). *)

val attach_archive : t -> Audit_mgmt.Shard_store.t -> unit
(** Attach the durable consolidated archive to the federation (see
    {!Audit_mgmt.Federation.attach_archive}). *)

val reseat_site : t -> string -> Audit_mgmt.Site.t -> unit
(** Swap a crash-recovered site back into the federation (see
    {!Audit_mgmt.Federation.reseat_site}). *)

val last_health : t -> Audit_mgmt.Health.t option
(** The health report of the most recent consolidation, if any. *)

val completeness : t -> float
(** Completeness of the most recent consolidation (1.0 before any). *)

val add_site : t -> Audit_mgmt.Site.t -> unit
(** Bring another system's audit trail into the consolidated view. *)

(** {1 Chaos-harness drive hooks}

    Step-wise control over the fault plane, so an external orchestrator
    (lib/chaos) can interleave outages, clock advances and durability
    toggles with the normal loop. *)

val add_faulty_site : ?breaker:Audit_mgmt.Breaker.config -> t -> Audit_mgmt.Fault.t -> unit
(** A federation member reached through a fault-injection wrapper, gated
    by its own circuit breaker. *)

val heal_all : t -> unit
(** {!Audit_mgmt.Fault.heal} every member. *)

val advance_clock : t -> int -> unit
(** Advance the federation's simulated millisecond clock (retries,
    breaker cooldowns). *)

val set_group_commit : t -> bool -> unit
(** Toggle group-commit batching on every attached WAL (central pair and
    member site WALs): pending appends coalesce into one device write at
    the next {!sync_durable}. *)

val vocab : t -> Vocabulary.Vocab.t
(** The vocabulary the refinement/coverage plane currently grounds
    against. *)

val set_vocab : t -> Vocabulary.Vocab.t -> unit
(** Adopt an edited vocabulary (a freshly constructed
    {!Vocabulary.Vocab.t} — e.g. a taxonomy that grew a leaf) on the
    refinement/coverage plane.  Fresh construction means a fresh
    {!Vocabulary.Vocab.stamp}: every grounding cache keyed by the old
    stamp goes cold atomically, so post-edit coverage must equal a
    from-scratch recompute.  The enforcement rule base keeps matching
    under its creation vocabulary — edits only add values, and installed
    permit rules reference values that existed when they were
    installed. *)

val set_auto_checkpoint : ?policy:Durable.Log.checkpoint_policy -> t -> bool -> unit
(** Toggle background WAL compaction ({!Durable.Log.set_auto_checkpoint},
    default policy: every 64 records) on every attached log — the central
    audit/quarantine pair and each member site's op WAL.  [false] clears
    the policy everywhere. *)

val sync_audit : t -> Audit_mgmt.Health.t
(** Pull the fault-aware consolidated view into the refinement component's
    P_AL; returns (and retains) the consolidation's health report. *)

val coverage : t -> Prima_core.Prima.coverage_report
(** Syncs, then reports both coverage readings (unqualified). *)

type qualified_coverage = {
  set_semantics : Prima_core.Coverage.qualified;
  bag_semantics : Prima_core.Coverage.qualified;
  health : Audit_mgmt.Health.t;
}

val coverage_qualified : t -> qualified_coverage
(** Syncs, then reports both coverage readings labelled [Exact] or
    [Lower_bound] by the consolidation's completeness. *)

val install_pattern : t -> Prima_core.Rule.t -> unit
(** Install a pattern as an enforcement permit rule (no-op for rules
    without the three pattern attributes). *)

val trend : t -> window:int -> Prima_core.Trend.point list
(** Coverage trend of the consolidated trail against the current store;
    {!Prima_core.Trend.drifting} on the result signals a refinement run is
    due. *)

val refine : t -> (Prima_core.Refinement.epoch_report, string) result
(** One full cycle: consolidate logs, run Algorithm 2 with the configured
    acceptance, embed accepted patterns into enforcement.  [Error] during
    the training period — and [Error] when consolidation completeness is
    below {!effective_threshold}: patterns mined from a partial window
    are never auto-accepted, because the evidence that would have rejected
    them may simply not have arrived.  After a recovery that dropped a WAL
    tail, the epoch's coverage readings are lower bounds. *)

(** {1 Multi-tenant admission}

    Budget classes on both request paths (see {!Audit_mgmt.Admission}).
    Once installed, the controller is shared with every member site's
    ingestion gate, its backpressure fed from the federation's health
    signals plus the central WAL pair's sync lag. *)

val set_budget_classes :
  t -> (string * Audit_mgmt.Admission.class_config) list -> unit
(** Declare the budget classes and install a fresh controller over them,
    buckets full at the federation's current clock reading. *)

val set_admission : t -> Audit_mgmt.Admission.t option -> unit
(** Install (or remove) an externally owned controller — e.g. one that
    must survive a system rebuild after a crash. *)

val admission : t -> Audit_mgmt.Admission.t option

val assign_tenant : t -> tenant:string -> class_name:string -> unit
(** @raise Invalid_argument without a controller or on an unknown class. *)

val refresh_pressure : t -> unit
(** Re-derive backpressure into the controller (no-op ungated).  The
    admitted paths do this before every decision. *)

type admitted_outcome = {
  outcome : Hdb.Enforcement.outcome;
  admitted_class : string;
  browned_out : bool;
      (** Partial execution: the outcome's rows are a lower bound *)
}

type admitted_error =
  | Shed of Audit_mgmt.Admission.rejection
      (** rejected at the gate, all-or-nothing and retryable *)
  | Query_failed of Hdb.Enforcement.error

val enforce_admitted :
  ?cost:Audit_mgmt.Admission.cost ->
  ?break_glass:bool ->
  t ->
  principal:Audit_mgmt.Admission.principal ->
  user:string ->
  role:string ->
  purpose:string ->
  string ->
  (admitted_outcome, admitted_error) result
(** An enforcement query through the admission gate.  The grant's limits
    compose tightest-wins with the standing {!query_limits}; actual
    consumption settles back against the class.  [cost] defaults to a
    64-row, 4096-tick declaration. *)

val refine_admitted :
  ?cost:Audit_mgmt.Admission.cost ->
  t ->
  principal:Audit_mgmt.Admission.principal ->
  (Prima_core.Refinement.epoch_report, string) result
(** {!refine} through the admission gate.  A shed epoch returns the typed
    rejection message; a brownout epoch runs under the tightened grant
    and always reports {!Prima_core.Coverage.Lower_bound} — the run was
    deliberately truncated, so its readings never claim exactness. *)
