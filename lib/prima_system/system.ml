(* The assembled PRIMA architecture of Figure 4:

     stakeholders -> Privacy Policy Definition (HDB Control Center)
                  -> privacy controls in the clinical environment
                  -> audit logs -> Audit Management (federation)
                  -> Policy Refinement -> definitions back into the policy

   This module wires the three components together and closes the loop:
   patterns accepted during refinement are installed both in the formal
   policy store P_PS and as Active Enforcement permit rules, so the
   corresponding accesses stop needing Break-The-Glass — privacy controls
   are "gradually and seamlessly" embedded into the clinical workflow.

   The loop is degraded-mode aware: consolidation runs through the
   fault-tolerant federation path and carries a health report; a coverage
   measurement from a partial trail is labelled a lower bound; and
   refinement patterns mined from a window whose completeness falls below
   the configured threshold are never auto-accepted — the evidence that
   would have rejected them may simply not have arrived. *)

(* Durable backing for the two stateful components that must survive a
   crash: the clinical database's audit store and the federation's transit
   quarantine.  Each gets its own WAL + snapshot pair. *)
type storage = {
  audit_log : Durable.Log.t;
  quarantine_log : Durable.Log.t;
}

type recovery_report = {
  audit : Durable.Recovery.t;
  quarantine : Durable.Recovery.t;
  undecodable : int; (* CRC-valid payloads that no longer decode *)
}

type t = {
  control : Hdb.Control_center.t;
  federation : Audit_mgmt.Federation.t;
  prima : Prima_core.Prima.t;
  mutable completeness_threshold : float;
  mutable last_health : Audit_mgmt.Health.t option;
  recovery : recovery_report option; (* Some iff created with ~storage *)
  mutable governed_epochs : int; (* refinement epochs run under a budget *)
  mutable degraded_epochs : int; (* of those, how many hit the budget *)
  mutable last_budget_stats : Relational.Errors.budget_stats option;
  mutable brownout_epochs : int; (* refinement epochs run under a brownout grant *)
  mutable shed_requests : int; (* admitted-path requests shed at the gate *)
}

let create ?(training_minimum = 0) ?(completeness_threshold = 0.9) ?config ?storage ~vocab
    ~p_ps () =
  let control = Hdb.Control_center.create ~vocab () in
  (* Seed the enforcement rule base from the initial policy store. *)
  List.iter
    (fun rule ->
      match
        ( Prima_core.Rule.find_attr rule Vocabulary.Audit_attrs.data,
          Prima_core.Rule.find_attr rule Vocabulary.Audit_attrs.purpose,
          Prima_core.Rule.find_attr rule Vocabulary.Audit_attrs.authorized )
      with
      | Some data, Some purpose, Some authorized ->
        Hdb.Control_center.permit control ~data ~purpose ~authorized
      | _ -> ())
    (Prima_core.Policy.rules p_ps);
  let federation = Audit_mgmt.Federation.create () in
  (* Open-or-recover the durable state before anything writes: the audit
     store replays its WAL into the control center's (still empty) columns,
     the quarantine replays its op log into the federation's transit
     quarantine, and both logs stay attached so new writes are
     write-ahead. *)
  let recovery =
    match storage with
    | None -> None
    | Some { audit_log; quarantine_log } ->
      let audit_recovery, audit_bad =
        Hdb.Audit_store.restore (Hdb.Control_center.audit_store control) audit_log
      in
      let quarantine_recovery, quarantine_bad =
        Audit_mgmt.Quarantine.restore
          (Audit_mgmt.Federation.transit_quarantine federation)
          quarantine_log
      in
      Some
        { audit = audit_recovery;
          quarantine = quarantine_recovery;
          undecodable = audit_bad + quarantine_bad;
        }
  in
  Audit_mgmt.Federation.add_site federation
    (Audit_mgmt.Site.of_store ~name:"clinical-db" (Hdb.Control_center.audit_store control));
  let prima = Prima_core.Prima.create ~training_minimum ?config ~vocab ~p_ps () in
  { control;
    federation;
    prima;
    completeness_threshold;
    last_health = None;
    recovery;
    governed_epochs = 0;
    degraded_epochs = 0;
    last_budget_stats = None;
    brownout_epochs = 0;
    shed_requests = 0;
  }

let recovery t = t.recovery

(* Did opening the durable state find tampering?  A [Tamper_detected]
   verdict on either trail means bytes that were once durable and verified
   were mutated in place — stronger than loss: the prefix before the
   divergence is trustworthy, everything after it was discarded, and the
   report says exactly where. *)
let tampered t =
  match t.recovery with
  | None -> false
  | Some r -> Durable.Recovery.tampered r.audit || Durable.Recovery.tampered r.quarantine

(* Did opening the durable state lose anything?  A dropped WAL tail (or a
   CRC-valid record that no longer decodes, or a tampered prefix) means
   the trail on disk is a verified prefix, not necessarily the whole
   history: every coverage statement over it is only a lower bound. *)
let durably_degraded t =
  match t.recovery with
  | None -> false
  | Some r ->
    Durable.Recovery.dropped_tail r.audit
    || Durable.Recovery.dropped_tail r.quarantine
    || r.undecodable > 0
    || tampered t

(* Is any federation-side durable state damaged?  A member site whose WAL
   recovery was lossy or tampered (and whose feed has not yet replayed
   the lost suffix), or a torn/tampered archive shard: either way some
   site's own record totals are not trustworthy, so coverage must stay a
   lower bound even when the record accounting looks complete. *)
let federation_degraded t =
  List.exists Audit_mgmt.Site.durably_degraded (Audit_mgmt.Federation.sites t.federation)
  || (match Audit_mgmt.Federation.archive t.federation with
     | Some a -> Audit_mgmt.Shard_store.shards_degraded a > 0
     | None -> false)

(* Everything durable verified end-to-end: central logs, per-site WALs,
   archive shards.  The [verified] input to coverage qualification. *)
let fully_verified t = (not (durably_degraded t)) && not (federation_degraded t)

let sync_durable t =
  Hdb.Audit_store.sync (Hdb.Control_center.audit_store t.control);
  Audit_mgmt.Quarantine.sync (Audit_mgmt.Federation.transit_quarantine t.federation);
  List.iter Audit_mgmt.Site.sync_wal (Audit_mgmt.Federation.sites t.federation);
  Option.iter Audit_mgmt.Shard_store.sync (Audit_mgmt.Federation.archive t.federation)

let checkpoint_durable t =
  Hdb.Audit_store.checkpoint (Hdb.Control_center.audit_store t.control);
  Audit_mgmt.Quarantine.checkpoint (Audit_mgmt.Federation.transit_quarantine t.federation);
  List.iter Audit_mgmt.Site.checkpoint_wal (Audit_mgmt.Federation.sites t.federation);
  Option.iter Audit_mgmt.Shard_store.checkpoint (Audit_mgmt.Federation.archive t.federation)

let attach_archive t archive = Audit_mgmt.Federation.attach_archive t.federation archive

let reseat_site t name site = Audit_mgmt.Federation.reseat_site t.federation name site

let control t = t.control
let federation t = t.federation
let prima t = t.prima

(* --- query governance --- *)

(* Budget applied to the refinement loop's pattern-extraction query; lives
   in the refinement config so Prima-level callers see the same limits.
   The same limits govern the enforcement query path (strict budgets in
   [Control_center.query]): one knob for the whole system's SQL. *)
let query_limits t =
  (Prima_core.Prima.refinement_config t.prima).Prima_core.Refinement.limits

let set_query_limits t limits =
  let config = Prima_core.Prima.refinement_config t.prima in
  Prima_core.Prima.set_refinement_config t.prima
    { config with Prima_core.Refinement.limits };
  Hdb.Control_center.set_query_limits t.control limits

type governance = {
  limits : Relational.Budget.limits option;
  governed_epochs : int;
  degraded_epochs : int;
  last_budget_stats : Relational.Errors.budget_stats option;
  brownout_epochs : int;
  shed_requests : int;
  classes : Audit_mgmt.Admission.class_stats list; (* per budget class *)
}

let governance t =
  { limits = query_limits t;
    governed_epochs = t.governed_epochs;
    degraded_epochs = t.degraded_epochs;
    last_budget_stats = t.last_budget_stats;
    brownout_epochs = t.brownout_epochs;
    shed_requests = t.shed_requests;
    classes =
      (match Audit_mgmt.Federation.admission t.federation with
      | None -> []
      | Some adm -> Audit_mgmt.Admission.stats adm);
  }

let completeness_threshold t = t.completeness_threshold
let set_completeness_threshold t x = t.completeness_threshold <- x

(* Adaptive completeness gate: the configured threshold is what we demand
   of a large window, but insisting on it for a handful of records blocks
   refinement on windows where a single stranded site swings completeness
   by tens of points.  Pseudo-count smoothing scales the floor with window
   size — at [n = adaptive_pivot] records the effective threshold is half
   the configured one, converging to it as the window grows. *)
let adaptive_pivot = 25

let effective_threshold_for t ~window =
  t.completeness_threshold *. float_of_int window
  /. float_of_int (window + adaptive_pivot)

let effective_threshold t =
  let window =
    match t.last_health with Some h -> h.Audit_mgmt.Health.total | None -> 0
  in
  effective_threshold_for t ~window

let last_health t = t.last_health

let add_site t site = Audit_mgmt.Federation.add_site t.federation site

(* --- chaos-harness drive hooks: step the fault plane from outside --- *)

let add_faulty_site ?breaker t fault =
  Audit_mgmt.Federation.add_faulty_site ?breaker t.federation fault

let heal_all t = Audit_mgmt.Federation.heal_all t.federation

let advance_clock t ms = Audit_mgmt.Federation.advance_clock t.federation ms

(* Toggle group-commit batching on both attached WALs (no-op without
   [~storage]); pending appends coalesce into one device write at the next
   [sync_durable]. *)
let set_group_commit t on =
  let set = function Some log -> Durable.Log.set_group_commit log on | None -> () in
  set (Hdb.Audit_store.log (Hdb.Control_center.audit_store t.control));
  set (Audit_mgmt.Quarantine.log (Audit_mgmt.Federation.transit_quarantine t.federation));
  List.iter
    (fun site -> set (Audit_mgmt.Site.wal site))
    (Audit_mgmt.Federation.sites t.federation)

(* Adopt an edited vocabulary on the refinement/coverage plane.  The
   enforcement rule base keeps matching under the vocabulary it was
   created with — an edit only ever adds values, and installed permit
   rules reference values that existed at installation time — while every
   coverage and refinement reading switches to the new (freshly stamped)
   vocabulary at once. *)
let set_vocab t vocab = Prima_core.Prima.set_vocab t.prima vocab

let vocab t = Prima_core.Prima.vocab t.prima

(* Toggle background WAL compaction on every attached log: the central
   audit/quarantine pair and each member site's op WAL.  No-op for logs
   that are not attached. *)
let set_auto_checkpoint ?(policy = Durable.Log.checkpoint_every ~records:64 ()) t on =
  let audit = Hdb.Control_center.audit_store t.control in
  let transit = Audit_mgmt.Federation.transit_quarantine t.federation in
  let sites = Audit_mgmt.Federation.sites t.federation in
  if on then begin
    Hdb.Audit_store.enable_auto_checkpoint ~policy audit;
    Audit_mgmt.Quarantine.enable_auto_checkpoint ~policy transit;
    List.iter (Audit_mgmt.Site.enable_auto_checkpoint ~policy) sites
  end
  else begin
    let clear log = Option.iter Durable.Log.clear_auto_checkpoint log in
    clear (Hdb.Audit_store.log audit);
    clear (Audit_mgmt.Quarantine.log transit);
    List.iter (fun site -> clear (Audit_mgmt.Site.wal site)) sites
  end

(* Pull the fault-aware consolidated view into the refinement component's
   P_AL; the health report of this consolidation is retained and its
   completeness qualifies everything computed from the window. *)
let sync_audit t =
  let result = Audit_mgmt.Federation.consolidated_result t.federation in
  t.last_health <- Some result.Audit_mgmt.Federation.health;
  Prima_core.Prima.reset_audit t.prima;
  Prima_core.Prima.ingest_rules t.prima
    (Prima_core.Policy.rules
       (Audit_mgmt.To_policy.policy_of_entries result.Audit_mgmt.Federation.entries));
  result.Audit_mgmt.Federation.health

let completeness t =
  match t.last_health with
  | Some h -> h.Audit_mgmt.Health.completeness
  | None -> 1.0

let coverage t =
  ignore (sync_audit t);
  Prima_core.Prima.coverage t.prima

(* Both coverage readings, each labelled with how much of the trail they
   were computed from. *)
type qualified_coverage = {
  set_semantics : Prima_core.Coverage.qualified;
  bag_semantics : Prima_core.Coverage.qualified;
  health : Audit_mgmt.Health.t;
}

let coverage_qualified t : qualified_coverage =
  let health = sync_audit t in
  let c = health.Audit_mgmt.Health.completeness in
  let verified = fully_verified t in
  let report = Prima_core.Prima.coverage t.prima in
  { set_semantics =
      Prima_core.Coverage.qualify ~verified ~completeness:c
        report.Prima_core.Prima.set_semantics;
    bag_semantics =
      Prima_core.Coverage.qualify ~verified ~completeness:c
        report.Prima_core.Prima.bag_semantics;
    health;
  }

(* Install an adopted pattern as an enforcement rule so subsequent accesses
   matching it are regular, not exception-based. *)
let install_pattern t rule =
  match
    ( Prima_core.Rule.find_attr rule Vocabulary.Audit_attrs.data,
      Prima_core.Rule.find_attr rule Vocabulary.Audit_attrs.purpose,
      Prima_core.Rule.find_attr rule Vocabulary.Audit_attrs.authorized )
  with
  | Some data, Some purpose, Some authorized ->
    Hdb.Control_center.permit t.control ~data ~purpose ~authorized
  | _ -> ()

(* Coverage trend over the consolidated trail, judged against the current
   store; [drifting] on its result signals a refinement run is due. *)
let trend t ~window =
  ignore (sync_audit t);
  Prima_core.Trend.compute
    (Prima_core.Prima.vocab t.prima)
    ~p_ps:(Prima_core.Prima.policy_store t.prima)
    ~p_al:(Prima_core.Prima.audit_policy t.prima)
    ~window ()

(* One full refinement cycle: consolidate logs, run Algorithm 2 with the
   configured acceptance, embed accepted patterns into enforcement.

   Refuses to run when the consolidation completeness is below the
   threshold: patterns mined from a partial window would be folded into
   P_PS and enforcement on evidence that may be contradicted by the
   missing records.  Recover the sites (or reprocess the quarantine) and
   retry, or lower the threshold deliberately. *)
let refine t : (Prima_core.Refinement.epoch_report, string) result =
  let health = sync_audit t in
  let c = health.Audit_mgmt.Health.completeness in
  let floor = effective_threshold_for t ~window:health.Audit_mgmt.Health.total in
  if c < floor then
    Error
      (Printf.sprintf
         "degraded audit window: completeness %.1f%% below threshold %.1f%% (configured \
          %.1f%%, scaled to a %d-record window); refusing to auto-accept patterns mined \
          from a partial trail"
         (100. *. c) (100. *. floor)
         (100. *. t.completeness_threshold)
         health.Audit_mgmt.Health.total)
  else
    match
      Prima_core.Prima.refine ~completeness:c ~verified:(fully_verified t) t.prima
    with
    | Error _ as e -> e
    | Ok report ->
      if query_limits t <> None then begin
        t.governed_epochs <- t.governed_epochs + 1;
        t.last_budget_stats <- Some report.Prima_core.Refinement.budget_stats
      end;
      if report.Prima_core.Refinement.degraded then
        t.degraded_epochs <- t.degraded_epochs + 1;
      List.iter (install_pattern t) report.Prima_core.Refinement.accepted;
      Ok report

(* --- multi-tenant admission: budget classes on both request paths --- *)

module Admission = Audit_mgmt.Admission

let admission t = Audit_mgmt.Federation.admission t.federation

let set_admission t adm = Audit_mgmt.Federation.set_admission t.federation adm

(* Declare the budget classes and install a fresh controller over them,
   shared with every member site's ingestion gate.  The controller's
   buckets start full at the federation's current clock reading. *)
let set_budget_classes t classes =
  let adm =
    Admission.create ~now:(Audit_mgmt.Federation.clock t.federation) classes
  in
  set_admission t (Some adm)

let assign_tenant t ~tenant ~class_name =
  match admission t with
  | None -> invalid_arg "System.assign_tenant: no budget classes installed"
  | Some adm -> Admission.assign adm ~tenant class_name

(* Backpressure: the federation's own signals plus the central WAL pair's
   sync lag.  Raises (or lowers) the admission bar; no-op ungated. *)
let refresh_pressure t =
  match admission t with
  | None -> ()
  | Some adm ->
    let p = Audit_mgmt.Federation.pressure_signals t.federation in
    let pending = function
      | Some log -> Durable.Log.pending_records log
      | None -> 0
    in
    let central =
      pending (Hdb.Audit_store.log (Hdb.Control_center.audit_store t.control))
      + pending
          (Audit_mgmt.Quarantine.log (Audit_mgmt.Federation.transit_quarantine t.federation))
    in
    Admission.set_pressure adm
      { p with Admission.wal_backlog = p.Admission.wal_backlog + central }

type admitted_outcome = {
  outcome : Hdb.Enforcement.outcome;
  admitted_class : string;
  browned_out : bool; (* Partial execution: result rows are a lower bound *)
}

type admitted_error =
  | Shed of Admission.rejection (* rejected at the gate; retryable *)
  | Query_failed of Hdb.Enforcement.error

(* An enforcement query through the admission gate.  The grant's limits
   compose tightest-wins with the standing query limits; a brownout grant
   runs the budget in Partial mode, so the outcome is an honest prefix.
   Actual consumption settles back against the class, so an
   underestimated cost declaration is charged eventually. *)
let enforce_admitted ?(cost = Admission.cost ~rows:64 ~ticks:4096 ()) ?break_glass t
    ~principal ~user ~role ~purpose sql =
  match admission t with
  | None -> (
    match Hdb.Control_center.query ?break_glass t.control ~user ~role ~purpose sql with
    | Ok outcome -> Ok { outcome; admitted_class = "(ungated)"; browned_out = false }
    | Error e -> Error (Query_failed e))
  | Some adm -> (
    refresh_pressure t;
    let now = Audit_mgmt.Federation.clock t.federation in
    match Admission.admit adm ~now ~kind:Admission.Query principal cost with
    | Admission.Rejected r ->
      t.shed_requests <- t.shed_requests + 1;
      Error (Shed r)
    | Admission.Admitted grant | Admission.Brownout grant ->
      let browned_out = grant.Admission.g_mode = Relational.Budget.Partial in
      let limits =
        match query_limits t with
        | None -> grant.Admission.g_limits
        | Some l -> Relational.Budget.limits_min l grant.Admission.g_limits
      in
      let budget = Relational.Budget.create ~mode:grant.Admission.g_mode limits in
      let result =
        Hdb.Control_center.query ?break_glass ~budget t.control ~user ~role ~purpose sql
      in
      Admission.settle adm ~now principal ~declared:cost (Relational.Budget.stats budget);
      (match result with
      | Ok outcome ->
        Ok { outcome; admitted_class = grant.Admission.g_class; browned_out }
      | Error e -> Error (Query_failed e)))

(* One refinement cycle through the admission gate.  A shed returns the
   typed rejection message; a brownout composes the grant's limits over
   the standing ones and forces the epoch to report
   [Coverage.Lower_bound] — the run was deliberately truncated, so its
   readings must not claim exactness even if the tightened budget never
   fired. *)
let refine_admitted ?(cost = Admission.cost ~rows:256 ~ticks:65536 ()) t ~principal =
  match admission t with
  | None -> refine t
  | Some adm -> (
    refresh_pressure t;
    let now = Audit_mgmt.Federation.clock t.federation in
    match Admission.admit adm ~now ~kind:Admission.Query principal cost with
    | Admission.Rejected r ->
      t.shed_requests <- t.shed_requests + 1;
      Error (Admission.rejection_to_string r)
    | Admission.Admitted grant | Admission.Brownout grant ->
      let browned_out = grant.Admission.g_mode = Relational.Budget.Partial in
      let saved = query_limits t in
      let limits =
        match saved with
        | None -> grant.Admission.g_limits
        | Some l -> Relational.Budget.limits_min l grant.Admission.g_limits
      in
      set_query_limits t (Some limits);
      let result = refine t in
      set_query_limits t saved;
      (match result with
      | Error _ as e -> e
      | Ok report ->
        Admission.settle adm ~now principal ~declared:cost
          report.Prima_core.Refinement.budget_stats;
        if browned_out then begin
          t.brownout_epochs <- t.brownout_epochs + 1;
          let c = completeness t in
          Ok
            { report with
              Prima_core.Refinement.qualifier = Prima_core.Coverage.Lower_bound c;
              degraded = true;
            }
        end
        else Ok report))
