(* Public facade over the relational engine: parse-and-execute SQL against a
   database, with convenience accessors for query results.  This is the
   surface Algorithm 5's [executeQuery] runs on, and the substrate HDB
   enforcement rewrites queries for. *)

type t = {
  db : Database.t;
}

let create ?name () = { db = Database.create ?name () }

let database t = t.db

let parse = Sql_parser.parse_stmt

(* Each entry point threads one optional [Budget.t] through the whole
   statement; omitted, execution is ungoverned (an unlimited strict
   budget). *)
let exec ?budget t sql = Executor.exec_stmt ?budget t.db (parse sql)

let exec_stmt ?budget t stmt = Executor.exec_stmt ?budget t.db stmt

let query ?budget t sql : Executor.result_set =
  match exec ?budget t sql with
  | Executor.Rows rs -> rs
  | Executor.Affected _ | Executor.Table_created _ | Executor.Table_dropped _ ->
    Errors.fail Errors.Execute "statement did not produce rows: %s" sql

let query_select ?budget t (select : Sql_ast.select) : Executor.result_set =
  match exec_stmt ?budget t (Sql_ast.Select select) with
  | Executor.Rows rs -> rs
  | _ -> Errors.internal "SELECT produced a non-row outcome"

let command ?budget t sql : int =
  match exec ?budget t sql with
  | Executor.Affected n -> n
  | Executor.Table_created _ | Executor.Table_dropped _ -> 0
  | Executor.Rows _ -> Errors.fail Errors.Execute "expected a command, got a query: %s" sql

(* Single-value convenience: the first column of the first row. *)
let query_scalar ?budget t sql : Value.t =
  let rs = query ?budget t sql in
  match rs.Executor.rows with
  | row :: _ when Row.arity row > 0 -> Row.get row 0
  | _ -> Errors.fail Errors.Execute "query returned no rows: %s" sql

let query_int ?budget t sql : int =
  match Value.as_int (query_scalar ?budget t sql) with
  | Some i -> i
  | None -> Errors.fail Errors.Execute "query did not return an integer: %s" sql

let table t name = Database.table t.db name

let create_table t ~name ~columns =
  let schema = Schema.of_list (List.map (fun (n, ty) -> Schema.column n ty) columns) in
  Database.create_table t.db ~name ~schema

let insert_row t ~table:table_name values =
  Table.insert_values (table t table_name) values

let pp_result ppf (rs : Executor.result_set) =
  let names = Schema.column_names rs.Executor.schema in
  let rows = List.map (fun r -> List.map Value.to_string (Row.to_list r)) rs.Executor.rows in
  let widths =
    List.mapi
      (fun i name ->
        List.fold_left (fun w r -> max w (String.length (List.nth r i))) (String.length name) rows)
      names
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render_line cells = String.concat " | " (List.map2 pad cells widths) in
  Fmt.pf ppf "%s@." (render_line names);
  Fmt.pf ppf "%s@." (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
  List.iter (fun r -> Fmt.pf ppf "%s@." (render_line r)) rows

let result_to_csv (rs : Executor.result_set) = Csv.result_to_csv rs.Executor.schema rs.Executor.rows
