(** Growable array with amortised O(1) append and O(1) random access.

    OCaml 5.1's stdlib has no [Dynarray]; tables and audit stores need
    one. *)

type 'a t

val create : unit -> 'a t

val make : int -> 'a -> 'a t
(** [make capacity dummy] pre-allocates capacity; [dummy] is never
    observable. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Errors.Internal when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Errors.Internal when out of bounds. *)

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element.
    @raise Errors.Internal when empty. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
val of_array : 'a array -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
val copy : 'a t -> 'a t
