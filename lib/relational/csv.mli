(** Minimal RFC-4180-style CSV for fixtures and result export.

    Quoted fields may contain commas, quotes ([""] escape) and newlines.
    An {e unquoted} empty field reads as NULL; a {e quoted} empty field
    ([""]) reads as the empty string on STRING columns.  The writer emits
    NULL as the bare empty field and [Str ""] as [""], so the two
    round-trip distinguishably. *)

type field = {
  text : string;
  quoted : bool;  (** the field was written in double quotes *)
}

val parse_field_seq : string -> field list list
(** Raw records with quoting information (no header handling).
    @raise Errors.Sql_error (Parse) on unterminated quotes. *)

val parse_line_seq : string -> string list list
(** {!parse_field_seq} with the quoting information dropped. *)

val parse_field_seq_numbered : string -> (int * field list) list
(** Like {!parse_field_seq}, each record paired with the 1-based physical
    line its first field starts on — quoted fields may span lines, which
    is why the record index alone cannot locate an error. *)

val parse_line_seq_numbered : string -> (int * string list) list
(** {!parse_field_seq_numbered} with the quoting information dropped. *)

val parse_value : ?quoted:bool -> Value.ty -> string -> Value.t
(** One field under a column type; an empty field is NULL unless [quoted]
    (default [false]) and the column is STRING, in which case it is
    [Str ""].
    @raise Errors.Sql_error (Parse) on unreadable fields. *)

val load_into : Table.t -> string -> has_header:bool -> int
(** Appends parsed rows (column order must match the schema); returns the
    number of rows loaded. *)

val escape_field : string -> string
(** Quotes a field when it contains commas, quotes or newlines. *)

val value_to_field : Value.t -> string
val result_to_csv : Schema.t -> Row.t list -> string
(** With a header line of column names. *)
