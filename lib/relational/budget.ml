(* Per-query resource governor.

   One [t] is created per top-level statement and threaded through the
   executor; every operator charges it at its boundaries:

     tick    one unit of work (a row examined, a join pair considered)
     tuple   one intermediate row materialised (scan output, join output,
             a new aggregation group, a DISTINCT set entry)
     row     one row of the top-level result

   Quotas default to unlimited, so the ungoverned path pays only an integer
   increment and compare per charge.  Two exhaustion modes:

     Strict   raise [Errors.Budget_exceeded] the moment a quota fires —
              the default, for interactive and enforcement queries;
     Partial  stop consuming input instead: operators truncate their scans
              at the quota and the result is a correct answer over a
              *prefix* of the data, flagged [truncated] so callers can
              qualify it as a lower bound (the refinement loop's
              degradation path).

   Cancellation is cooperative: the token is checked at every tick and
   always raises [Errors.Cancelled], in both modes — a user abort is not a
   degradation.  The deadline counts simulated time in ticks, making
   timeout tests deterministic; a query consuming exactly [deadline] ticks
   completes, one more tick raises. *)

type limits = {
  max_rows : int option;
  max_tuples : int option;
  deadline : int option;
  max_wall_ms : int option;
}

let unlimited = { max_rows = None; max_tuples = None; deadline = None; max_wall_ms = None }

let limits ?rows ?tuples ?ticks ?wall_ms () =
  { max_rows = rows; max_tuples = tuples; deadline = ticks; max_wall_ms = wall_ms }

(* Pointwise tightest-wins combination: [None] is unlimited, so the
   other side's quota prevails; two quotas take the minimum.  Used to
   compose an admission grant with a standing query-limits policy. *)
let limits_min a b =
  let m x y =
    match (x, y) with
    | None, l | l, None -> l
    | Some x, Some y -> Some (min x y)
  in
  { max_rows = m a.max_rows b.max_rows;
    max_tuples = m a.max_tuples b.max_tuples;
    deadline = m a.deadline b.deadline;
    max_wall_ms = m a.max_wall_ms b.max_wall_ms;
  }

type mode =
  | Strict
  | Partial

type cancel = { mutable cancelled : bool }

let cancel_token () = { cancelled = false }
let cancel c = c.cancelled <- true
let is_cancelled c = c.cancelled

type t = {
  mode : mode;
  max_rows : int;
  max_tuples : int;
  deadline : int;
  wall_limit_ms : float;  (* [infinity] when no wall deadline is set *)
  now : unit -> float;  (* milliseconds; injectable for determinism *)
  start_ms : float;  (* [now] at creation, 0. when no wall deadline *)
  cancel : cancel;
  trip_at : int;  (* test hook: auto-cancel when ticks reach this *)
  mutable rows_out : int;
  mutable tuples : int;
  mutable ticks : int;
  mutable exhausted : Errors.resource option;  (* first quota that fired *)
}

let of_option = function Some n -> max n 0 | None -> max_int

let wall_clock_ms () = Unix.gettimeofday () *. 1000.

let create ?(mode = Strict) ?cancel ?(cancel_at = max_int) ?now (limits : limits) =
  let now = match now with Some f -> f | None -> wall_clock_ms in
  let wall_limit_ms, start_ms =
    match limits.max_wall_ms with
    | None -> (infinity, 0.)
    | Some ms -> (float_of_int (max ms 0), now ())
  in
  { mode;
    max_rows = of_option limits.max_rows;
    max_tuples = of_option limits.max_tuples;
    deadline = of_option limits.deadline;
    wall_limit_ms;
    now;
    start_ms;
    cancel = (match cancel with Some c -> c | None -> cancel_token ());
    trip_at = cancel_at;
    rows_out = 0;
    tuples = 0;
    ticks = 0;
    exhausted = None;
  }

let default () = create unlimited

let mode t = t.mode

let stats t : Errors.budget_stats =
  { Errors.rows_out = t.rows_out; tuples = t.tuples; ticks = t.ticks }

let exhausted t = t.exhausted

(* The result was computed from a prefix of the input (Partial mode only). *)
let truncated t = t.mode = Partial && t.exhausted <> None

let trip t resource =
  if t.exhausted = None then t.exhausted <- Some resource;
  match t.mode with
  | Strict -> raise (Errors.Budget_exceeded (resource, stats t))
  | Partial -> false

(* Charge one unit of work.  [true] to continue; [false] (Partial only)
   when the deadline has passed and the operator should stop consuming. *)
let step t =
  t.ticks <- t.ticks + 1;
  if t.cancel.cancelled || t.ticks >= t.trip_at then begin
    t.cancel.cancelled <- true;
    raise (Errors.Cancelled (stats t))
  end;
  if t.ticks > t.deadline then trip t Errors.Time
  else if t.wall_limit_ms < infinity && t.now () -. t.start_ms > t.wall_limit_ms then
    trip t Errors.Time
  else true

(* Charge one unit of work plus one materialised tuple. *)
let admit t =
  if not (step t) then false
  else begin
    t.tuples <- t.tuples + 1;
    if t.tuples > t.max_tuples then trip t Errors.Tuples else true
  end

(* Charge a whole row list as materialised tuples (a scan, a derived-table
   result).  Strict: charges every element and returns the list unchanged —
   physically the same list, so a budget that never fires costs nothing
   beyond the counter.  Partial: returns the admitted prefix. *)
let admit_list t rows =
  match t.mode with
  | Strict ->
    List.iter (fun _ -> ignore (admit t)) rows;
    rows
  | Partial ->
    let rec go acc = function
      | [] -> List.rev acc
      | r :: rest -> if admit t then go (r :: acc) rest else List.rev acc
    in
    go [] rows

(* Charge the top-level result rows against the output quota.  Strict:
   raise when over; Partial: truncate the result to the quota. *)
let charge_rows t rows =
  match t.mode with
  | Strict ->
    List.iter
      (fun _ ->
        t.rows_out <- t.rows_out + 1;
        if t.rows_out > t.max_rows then ignore (trip t Errors.Rows))
      rows;
    rows
  | Partial ->
    let rec go acc = function
      | [] -> List.rev acc
      | r :: rest ->
        t.rows_out <- t.rows_out + 1;
        if t.rows_out > t.max_rows then begin
          ignore (trip t Errors.Rows);
          List.rev acc
        end
        else go (r :: acc) rest
    in
    go [] rows
