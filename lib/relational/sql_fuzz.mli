(** Seeded SQL fuzzer for the governed query path.

    Deterministic in [seed]: builds a random schema and data set, then
    generates random statements (rendered through {!Sql_ast.to_sql}, so
    every case also round-trips the lexer and parser) plus deliberately
    mangled SQL text, and checks the engine's safety contract:

    - every statement returns, raises a typed engine error, or hits its
      budget — never an untyped exception ({!Errors.Internal} counts as a
      failure: it marks a broken engine invariant);
    - a strict budget generous enough never to fire leaves results
      bitwise-identical to the ungoverned run;
    - a tight budget raises {!Errors.Budget_exceeded} only in strict
      mode; the same limits in partial mode never raise. *)

type failure = {
  sql : string;  (** the offending statement, replayable verbatim *)
  reason : string;
}

type report = {
  seed : int;
  queries : int;  (** statements executed, across all checks *)
  ok : int;
  typed_errors : int;
  budget_hits : int;
  truncated_runs : int;  (** partial-mode runs that degraded *)
  untyped : failure list;
  mismatches : failure list;
}

val run : ?queries:int -> seed:int -> unit -> report
(** Generate and check [queries] base statements (default 500); each
    read-only statement is additionally re-run under generous, tight and
    partial budgets. *)

val run_dml : ?ops:int -> seed:int -> unit -> report
(** INSERT/UPDATE/DELETE round-trips against a model table: every
    generated DML statement (default 300, some mangled) runs on a governed
    engine (generous strict budget) and an ungoverned model engine; the
    outcome classes must agree and the full table contents must stay
    bitwise-identical after every statement — plus the usual
    only-typed-errors-escape invariant on the write path. *)

val passed : report -> bool
(** No untyped exceptions and no governed/ungoverned mismatches. *)

val pp : Format.formatter -> report -> unit
