(* Recursive-descent parser with precedence climbing.

   Grammar (informal):
     stmt     := select | create | drop | insert | delete | update
     select   := SELECT [DISTINCT] projs [FROM from] [WHERE e] [GROUP BY es]
                 [HAVING e] [ORDER BY e [ASC|DESC], ...] [LIMIT n [OFFSET n]]
     from     := table_ref (("," | [LEFT|CROSS] JOIN) table_ref [ON e])*
     e        := or-precedence expression with NOT, comparisons, IN, LIKE,
                 IS [NOT] NULL, BETWEEN, arithmetic, '||', function calls
   Aggregates (COUNT/SUM/AVG/MIN/MAX) parse as [Agg] nodes; COUNT star and
   COUNT(DISTINCT e) are supported. *)

open Sql_lexer

(* The token stream keeps each token's byte offset so parse failures can
   point at the offending token. *)
type state = {
  mutable tokens : (token * int) list;
}

let peek st = match st.tokens with [] -> Eof | (t, _) :: _ -> t

let peek_pos st = match st.tokens with [] -> 0 | (_, p) :: _ -> p

let peek2 st = match st.tokens with _ :: (t, _) :: _ -> t | _ -> Eof

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let fail_tok st expected =
  let found = peek st in
  Errors.fail_at Errors.Parse ~offset:(peek_pos st) ~token:(token_to_string found)
    "expected %s, found %s" expected (token_to_string found)

let expect st token name =
  if peek st = token then advance st else fail_tok st name

let is_kw st kw =
  match peek st with
  | Ident s -> String.uppercase_ascii s = kw
  | _ -> false

(* Consume the keyword if present; return whether it was. *)
let accept_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let expect_kw st kw = if not (accept_kw st kw) then fail_tok st kw

let reserved =
  [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "HAVING"; "ORDER"; "LIMIT"; "OFFSET";
    "AND"; "OR"; "NOT"; "AS"; "ON"; "JOIN"; "LEFT"; "CROSS"; "INNER"; "BY";
    "ASC"; "DESC"; "IN"; "LIKE"; "IS"; "NULL"; "BETWEEN"; "DISTINCT"; "VALUES";
    "INSERT"; "INTO"; "DELETE"; "UPDATE"; "SET"; "CREATE"; "DROP"; "TABLE";
    "TRUE"; "FALSE"; "UNION"; "EXISTS" ]

let is_reserved s = List.mem (String.uppercase_ascii s) reserved

let parse_ident st =
  match peek st with
  | Ident s when not (is_reserved s) ->
    advance st;
    s
  | _ -> fail_tok st "identifier"

let agg_of_name s =
  match String.uppercase_ascii s with
  | "COUNT" -> Some Sql_ast.Count
  | "SUM" -> Some Sql_ast.Sum
  | "AVG" -> Some Sql_ast.Avg
  | "MIN" -> Some Sql_ast.Min
  | "MAX" -> Some Sql_ast.Max
  | _ -> None

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if accept_kw st "OR" then Sql_ast.Binop (Sql_ast.Or, left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if accept_kw st "AND" then Sql_ast.Binop (Sql_ast.And, left, parse_and st) else left

and parse_not st =
  if accept_kw st "NOT" then Sql_ast.Unop (Sql_ast.Not, parse_not st)
  else parse_predicate st

and parse_predicate st =
  let scrutinee = parse_additive st in
  match peek st with
  | Eq_tok -> advance st; Sql_ast.Binop (Sql_ast.Eq, scrutinee, parse_additive st)
  | Neq_tok -> advance st; Sql_ast.Binop (Sql_ast.Neq, scrutinee, parse_additive st)
  | Lt_tok -> advance st; Sql_ast.Binop (Sql_ast.Lt, scrutinee, parse_additive st)
  | Le_tok -> advance st; Sql_ast.Binop (Sql_ast.Le, scrutinee, parse_additive st)
  | Gt_tok -> advance st; Sql_ast.Binop (Sql_ast.Gt, scrutinee, parse_additive st)
  | Ge_tok -> advance st; Sql_ast.Binop (Sql_ast.Ge, scrutinee, parse_additive st)
  | Ident _ ->
    if is_kw st "IS" then begin
      advance st;
      let negated = accept_kw st "NOT" in
      expect_kw st "NULL";
      Sql_ast.Is_null { scrutinee; negated }
    end
    else begin
      let negated = is_kw st "NOT" && (match peek2 st with
        | Ident s -> (match String.uppercase_ascii s with "IN" | "LIKE" | "BETWEEN" -> true | _ -> false)
        | _ -> false)
      in
      if negated then advance st;
      if accept_kw st "IN" then begin
        expect st Lparen "(";
        if is_kw st "SELECT" then begin
          let select = parse_select st in
          expect st Rparen ")";
          Sql_ast.In_select { scrutinee; negated; select }
        end
        else begin
          let items = parse_expr_list st in
          expect st Rparen ")";
          Sql_ast.In_list { scrutinee; negated; items }
        end
      end
      else if accept_kw st "LIKE" then
        Sql_ast.Like { scrutinee; negated; pattern = parse_additive st }
      else if accept_kw st "BETWEEN" then begin
        let low = parse_additive st in
        expect_kw st "AND";
        let high = parse_additive st in
        Sql_ast.Between { scrutinee; negated; low; high }
      end
      else if negated then fail_tok st "IN, LIKE or BETWEEN"
      else scrutinee
    end
  | _ -> scrutinee

and parse_additive st =
  let rec go left =
    match peek st with
    | Plus -> advance st; go (Sql_ast.Binop (Sql_ast.Add, left, parse_multiplicative st))
    | Minus -> advance st; go (Sql_ast.Binop (Sql_ast.Sub, left, parse_multiplicative st))
    | Concat_tok ->
      advance st;
      go (Sql_ast.Binop (Sql_ast.Concat, left, parse_multiplicative st))
    | _ -> left
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go left =
    match peek st with
    | Star_tok -> advance st; go (Sql_ast.Binop (Sql_ast.Mul, left, parse_unary st))
    | Slash -> advance st; go (Sql_ast.Binop (Sql_ast.Div, left, parse_unary st))
    | Percent -> advance st; go (Sql_ast.Binop (Sql_ast.Mod, left, parse_unary st))
    | _ -> left
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Minus ->
    advance st;
    Sql_ast.Unop (Sql_ast.Neg, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Int_lit i -> advance st; Sql_ast.Lit (Value.Int i)
  | Float_lit f -> advance st; Sql_ast.Lit (Value.Float f)
  | String_lit s -> advance st; Sql_ast.Lit (Value.Str s)
  | Lparen ->
    advance st;
    if is_kw st "SELECT" then begin
      let select = parse_select st in
      expect st Rparen ")";
      Sql_ast.Scalar_select select
    end
    else begin
      let e = parse_expr st in
      expect st Rparen ")";
      e
    end
  | Star_tok ->
    advance st;
    Sql_ast.Star
  | Ident s when String.uppercase_ascii s = "EXISTS" ->
    advance st;
    expect st Lparen "(";
    if not (is_kw st "SELECT") then fail_tok st "SELECT";
    let select = parse_select st in
    expect st Rparen ")";
    Sql_ast.Exists select
  | Ident s when String.uppercase_ascii s = "NULL" -> advance st; Sql_ast.Lit Value.Null
  | Ident s when String.uppercase_ascii s = "TRUE" -> advance st; Sql_ast.Lit (Value.Bool true)
  | Ident s when String.uppercase_ascii s = "FALSE" ->
    advance st;
    Sql_ast.Lit (Value.Bool false)
  | Ident s when not (is_reserved s) ->
    advance st;
    (match peek st with
    | Lparen ->
      advance st;
      parse_call st s
    | Dot ->
      advance st;
      let name = parse_ident st in
      Sql_ast.Col { qualifier = Some s; name }
    | _ -> Sql_ast.Col { qualifier = None; name = s })
  | _ -> fail_tok st "expression"

(* Called after consuming 'name('. *)
and parse_call st name =
  let finish e =
    expect st Rparen ")";
    e
  in
  match agg_of_name name with
  | Some fn ->
    if peek st = Star_tok then begin
      advance st;
      finish (Sql_ast.Agg { fn; distinct = false; arg = Sql_ast.Star })
    end
    else begin
      let distinct = accept_kw st "DISTINCT" in
      let arg = parse_expr st in
      finish (Sql_ast.Agg { fn; distinct; arg })
    end
  | None ->
    if peek st = Rparen then finish (Sql_ast.Call (String.lowercase_ascii name, []))
    else begin
      let args = parse_expr_list st in
      finish (Sql_ast.Call (String.lowercase_ascii name, args))
    end

and parse_expr_list st =
  let first = parse_expr st in
  let rec go acc =
    if peek st = Comma then begin
      advance st;
      go (parse_expr st :: acc)
    end
    else List.rev acc
  in
  go [ first ]

and parse_projection st =
  if peek st = Star_tok then begin
    advance st;
    Sql_ast.All_columns
  end
  else begin
    let e = parse_expr st in
    if accept_kw st "AS" then Sql_ast.Proj (e, Some (parse_ident st))
    else
      match peek st with
      | Ident s when not (is_reserved s) ->
        advance st;
        Sql_ast.Proj (e, Some s)
      | _ -> Sql_ast.Proj (e, None)
  end

and parse_table_atom st =
  if peek st = Lparen then begin
    advance st;
    if not (is_kw st "SELECT") then fail_tok st "SELECT";
    let select = parse_select st in
    expect st Rparen ")";
    let _ = accept_kw st "AS" in
    Sql_ast.Derived { select; alias = parse_ident st }
  end
  else begin
    let name = parse_ident st in
    if accept_kw st "AS" then Sql_ast.Table { name; alias = Some (parse_ident st) }
    else
      match peek st with
      | Ident s when not (is_reserved s) ->
        advance st;
        Sql_ast.Table { name; alias = Some s }
      | _ -> Sql_ast.Table { name; alias = None }
  end

and parse_from st =
  let rec go left =
    match peek st with
    | Comma ->
      advance st;
      let right = parse_table_atom st in
      go (Sql_ast.Join { left; right; kind = Sql_ast.Cross; on = None })
    | Ident _ when is_kw st "JOIN" || is_kw st "INNER" ->
      let _ = accept_kw st "INNER" in
      expect_kw st "JOIN";
      let right = parse_table_atom st in
      expect_kw st "ON";
      let on = parse_expr st in
      go (Sql_ast.Join { left; right; kind = Sql_ast.Inner; on = Some on })
    | Ident _ when is_kw st "LEFT" ->
      advance st;
      expect_kw st "JOIN";
      let right = parse_table_atom st in
      expect_kw st "ON";
      let on = parse_expr st in
      go (Sql_ast.Join { left; right; kind = Sql_ast.Left; on = Some on })
    | Ident _ when is_kw st "CROSS" ->
      advance st;
      expect_kw st "JOIN";
      let right = parse_table_atom st in
      go (Sql_ast.Join { left; right; kind = Sql_ast.Cross; on = None })
    | _ -> left
  in
  go (parse_table_atom st)

and parse_select st =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let projections =
    let first = parse_projection st in
    let rec go acc =
      if peek st = Comma then begin
        advance st;
        go (parse_projection st :: acc)
      end
      else List.rev acc
    in
    go [ first ]
  in
  let from = if accept_kw st "FROM" then Some (parse_from st) else None in
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      parse_expr_list st
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_expr st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let item () =
        let e = parse_expr st in
        if accept_kw st "DESC" then (e, Sql_ast.Desc)
        else begin
          let _ = accept_kw st "ASC" in
          (e, Sql_ast.Asc)
        end
      in
      let first = item () in
      let rec go acc =
        if peek st = Comma then begin
          advance st;
          go (item () :: acc)
        end
        else List.rev acc
      in
      go [ first ]
    end
    else []
  in
  let parse_count name =
    match peek st with
    | Int_lit i ->
      advance st;
      i
    | _ -> fail_tok st name
  in
  let limit = if accept_kw st "LIMIT" then Some (parse_count "limit count") else None in
  let offset = if accept_kw st "OFFSET" then Some (parse_count "offset count") else None in
  { Sql_ast.distinct; projections; from; where; group_by; having; order_by; limit; offset }

let parse_column_defs st =
  expect st Lparen "(";
  let one () =
    let name = parse_ident st in
    match peek st with
    | Ident tyname ->
      (match Value.ty_of_string tyname with
      | Some ty ->
        advance st;
        (name, ty)
      | None ->
        Errors.fail_at Errors.Parse ~offset:(peek_pos st) ~token:tyname
          "unknown column type: %s" tyname)
    | _ -> fail_tok st "column type"
  in
  let first = one () in
  let rec go acc =
    if peek st = Comma then begin
      advance st;
      go (one () :: acc)
    end
    else List.rev acc
  in
  let columns = go [ first ] in
  expect st Rparen ")";
  columns

let parse_insert st =
  expect_kw st "INSERT";
  expect_kw st "INTO";
  let table = parse_ident st in
  let columns =
    if peek st = Lparen then begin
      advance st;
      let first = parse_ident st in
      let rec go acc =
        if peek st = Comma then begin
          advance st;
          go (parse_ident st :: acc)
        end
        else List.rev acc
      in
      let cs = go [ first ] in
      expect st Rparen ")";
      Some cs
    end
    else None
  in
  expect_kw st "VALUES";
  let one_row () =
    expect st Lparen "(";
    let vs = parse_expr_list st in
    expect st Rparen ")";
    vs
  in
  let first = one_row () in
  let rec go acc =
    if peek st = Comma then begin
      advance st;
      go (one_row () :: acc)
    end
    else List.rev acc
  in
  Sql_ast.Insert { table; columns; rows = go [ first ] }

let parse_compound st =
  let first = parse_select st in
  let rec go acc =
    if accept_kw st "UNION" then begin
      let all = accept_kw st "ALL" in
      if not (is_kw st "SELECT") then fail_tok st "SELECT";
      go ((all, parse_select st) :: acc)
    end
    else List.rev acc
  in
  match go [] with
  | [] -> Sql_ast.Select first
  | rest -> Sql_ast.Compound { Sql_ast.first; rest }

let parse_stmt_inner st =
  if is_kw st "SELECT" then parse_compound st
  else if is_kw st "CREATE" then begin
    advance st;
    expect_kw st "TABLE";
    let name = parse_ident st in
    Sql_ast.Create_table { name; columns = parse_column_defs st }
  end
  else if is_kw st "DROP" then begin
    advance st;
    expect_kw st "TABLE";
    Sql_ast.Drop_table (parse_ident st)
  end
  else if is_kw st "INSERT" then parse_insert st
  else if is_kw st "DELETE" then begin
    advance st;
    expect_kw st "FROM";
    let table = parse_ident st in
    let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
    Sql_ast.Delete { table; where }
  end
  else if is_kw st "UPDATE" then begin
    advance st;
    let table = parse_ident st in
    expect_kw st "SET";
    let one () =
      let c = parse_ident st in
      expect st Eq_tok "=";
      (c, parse_expr st)
    in
    let first = one () in
    let rec go acc =
      if peek st = Comma then begin
        advance st;
        go (one () :: acc)
      end
      else List.rev acc
    in
    let assignments = go [ first ] in
    let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
    Sql_ast.Update { table; assignments; where }
  end
  else fail_tok st "statement"

let parse_stmt input =
  let st = { tokens = Sql_lexer.tokenize input } in
  let stmt = parse_stmt_inner st in
  if peek st = Semicolon then advance st;
  if peek st <> Eof then fail_tok st "end of statement";
  stmt

let parse_expr_string input =
  let st = { tokens = Sql_lexer.tokenize input } in
  let e = parse_expr st in
  if peek st <> Eof then fail_tok st "end of expression";
  e
