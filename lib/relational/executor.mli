(** Statement execution.

    SELECT pipeline: FROM (scans, nested-loop joins) → WHERE →
    grouping/aggregation → HAVING → projection → DISTINCT → ORDER BY →
    OFFSET/LIMIT.  Uncorrelated [IN (SELECT ...)] subqueries in WHERE and
    HAVING are evaluated eagerly and replaced by literal lists.

    Every entry point takes an optional {!Budget.t}, charged at operator
    boundaries; omitted, a fresh unlimited strict budget is used and
    results are identical to the ungoverned engine.  In strict mode a
    fired quota raises {!Errors.Budget_exceeded} (or {!Errors.Cancelled});
    in partial mode producing operators stop at the quota and the result
    covers a prefix of the input — check [Budget.truncated]. *)

type result_set = {
  schema : Schema.t;
  rows : Row.t list;
}

type outcome =
  | Rows of result_set  (** SELECT *)
  | Affected of int  (** INSERT/DELETE/UPDATE row count *)
  | Table_created of string
  | Table_dropped of string

val resolve_subqueries : ?budget:Budget.t -> Database.t -> Sql_ast.expr -> Sql_ast.expr
(** Replaces every [In_select] with an [In_list] of the subquery's first
    column.  @raise Errors.Sql_error (Plan) when a subquery is not
    single-column. *)

val exec_select : ?budget:Budget.t -> Database.t -> Sql_ast.select -> result_set
(** @raise Errors.Sql_error on any planning or runtime failure. *)

val exec_compound : ?budget:Budget.t -> Database.t -> Sql_ast.compound -> result_set
(** UNION chains: branches must agree in arity; the first branch names the
    output; plain UNION deduplicates, UNION ALL concatenates. *)

val exec_stmt : ?budget:Budget.t -> Database.t -> Sql_ast.stmt -> outcome
(** Executes any statement.  The top-level result rows are charged against
    the budget's row quota; mutations (INSERT/DELETE/UPDATE) tick the
    budget per row but are never truncated in partial mode. *)
