(** Facade over the relational engine: parse-and-execute SQL against a
    database.

    This is the surface Algorithm 5's [executeQuery] runs on, and the
    substrate whose queries HDB Active Enforcement rewrites. *)

type t

val create : ?name:string -> unit -> t
val database : t -> Database.t

val parse : string -> Sql_ast.stmt
(** Alias of {!Sql_parser.parse_stmt}. *)

val exec : ?budget:Budget.t -> t -> string -> Executor.outcome
(** Parse and execute one statement.  [budget] governs the whole
    execution (see {!Budget}); omitted, execution is ungoverned. *)

val exec_stmt : ?budget:Budget.t -> t -> Sql_ast.stmt -> Executor.outcome

val query : ?budget:Budget.t -> t -> string -> Executor.result_set
(** @raise Errors.Sql_error (Execute) when the statement is not a query. *)

val query_select : ?budget:Budget.t -> t -> Sql_ast.select -> Executor.result_set
(** Execute an already-built SELECT (the enforcement path). *)

val command : ?budget:Budget.t -> t -> string -> int
(** Rows affected; 0 for DDL.
    @raise Errors.Sql_error (Execute) when the statement returns rows. *)

val query_scalar : ?budget:Budget.t -> t -> string -> Value.t
(** First column of the first row.
    @raise Errors.Sql_error (Execute) when no rows are returned. *)

val query_int : ?budget:Budget.t -> t -> string -> int
(** {!query_scalar} coerced to an integer. *)

val table : t -> string -> Table.t
val create_table : t -> name:string -> columns:(string * Value.ty) list -> Table.t
val insert_row : t -> table:string -> Value.t list -> unit

val pp_result : Format.formatter -> Executor.result_set -> unit
(** Aligned ASCII table. *)

val result_to_csv : Executor.result_set -> string
