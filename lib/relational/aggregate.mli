(** Streaming aggregate accumulators: one instance per (aggregate
    expression, group).  DISTINCT variants keep a hash set of seen values. *)

type t

val create : ?budget:Budget.t -> Sql_ast.agg_fn -> distinct:bool -> counts_star:bool -> t
(** [counts_star] marks COUNT( * ): every row counts and the fed value is
    ignored.  Otherwise SQL semantics skip NULL inputs.  With [budget],
    DISTINCT-set growth is charged as materialised tuples (hash-table
    growth is where an adversarial COUNT(DISTINCT ...) blows memory). *)

val step : t -> Value.t -> unit
(** Feed one input value. *)

val final : t -> Value.t
(** The aggregate result.  Empty SUM/AVG/MIN/MAX yield NULL; empty COUNT
    yields 0.  SUM stays INTEGER unless a REAL was seen; AVG is always
    REAL. *)
