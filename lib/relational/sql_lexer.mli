(** Hand-written SQL lexer.

    Keywords are not distinguished here — the parser matches identifiers
    case-insensitively, so user tables may freely use names like [status]
    that are keywords elsewhere. *)

type token =
  | Ident of string  (** bare or double-quoted identifier *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string  (** single-quoted, with [''] escapes decoded *)
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star_tok
  | Plus
  | Minus
  | Slash
  | Percent
  | Eq_tok
  | Neq_tok  (** [<>] or [!=] *)
  | Lt_tok
  | Le_tok
  | Gt_tok
  | Ge_tok
  | Concat_tok  (** [||] *)
  | Semicolon
  | Eof

val token_to_string : token -> string

val tokenize : string -> (token * int) list
(** The token stream with each token's starting byte offset, ending with
    [(Eof, length input)].  [--] line comments are skipped.
    @raise Errors.Parse_error (phase [Lex]) on malformed input, pointing at
    the offending character or unterminated literal. *)
