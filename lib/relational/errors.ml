(* Engine-wide error reporting.  Every user-facing failure is one of the
   typed exceptions below, so callers never have to match on internal
   exceptions:

     Sql_error       classic phase-tagged failure (plan/execute/catalog)
     Parse_error     lex/parse failure carrying the offending token position
     Budget_exceeded a resource governor quota fired (see Budget)
     Cancelled       the query's cancellation token was pulled
     Internal        an engine invariant broke (a bug, not bad input) *)

type phase =
  | Lex
  | Parse
  | Plan
  | Execute
  | Catalog

type position = {
  offset : int;  (* byte offset of the offending token in the SQL text *)
  token : string;  (* the token as written, "<eof>" at end of input *)
}

type resource =
  | Rows
  | Tuples
  | Time

type budget_stats = {
  rows_out : int;
  tuples : int;
  ticks : int;
}

exception Sql_error of phase * string
exception Parse_error of { phase : phase; message : string; position : position }
exception Budget_exceeded of resource * budget_stats
exception Cancelled of budget_stats
exception Internal of string

let phase_to_string = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Plan -> "plan"
  | Execute -> "execute"
  | Catalog -> "catalog"

let resource_to_string = function
  | Rows -> "row quota"
  | Tuples -> "tuple quota"
  | Time -> "deadline"

let fail phase fmt = Fmt.kstr (fun msg -> raise (Sql_error (phase, msg))) fmt

let fail_at phase ~offset ~token fmt =
  Fmt.kstr
    (fun message -> raise (Parse_error { phase; message; position = { offset; token } }))
    fmt

let internal fmt = Fmt.kstr (fun msg -> raise (Internal msg)) fmt

let stats_to_string { rows_out; tuples; ticks } =
  Printf.sprintf "rows_out=%d tuples=%d ticks=%d" rows_out tuples ticks

(* Everything raised on purpose by the engine. *)
let is_engine_error = function
  | Sql_error _ | Parse_error _ | Budget_exceeded _ | Cancelled _ | Internal _ -> true
  | _ -> false

let to_string = function
  | Sql_error (phase, msg) -> Printf.sprintf "%s error: %s" (phase_to_string phase) msg
  | Parse_error { phase; message; position } ->
    Printf.sprintf "%s error at offset %d near %S: %s" (phase_to_string phase)
      position.offset position.token message
  | Budget_exceeded (resource, stats) ->
    Printf.sprintf "query exceeded its %s (%s)" (resource_to_string resource)
      (stats_to_string stats)
  | Cancelled stats -> Printf.sprintf "query cancelled (%s)" (stats_to_string stats)
  | Internal msg -> Printf.sprintf "internal engine error: %s" msg
  | exn -> Printexc.to_string exn
