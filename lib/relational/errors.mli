(** Engine-wide error reporting.

    Every user-facing failure of the relational engine is one of the typed
    exceptions below, so callers can report precisely without matching
    internal exceptions.  {!is_engine_error} is the fuzzer's contract: any
    other exception escaping the engine is a bug. *)

type phase =
  | Lex  (** tokenisation of SQL text *)
  | Parse  (** syntactic analysis *)
  | Plan  (** name resolution / query validation *)
  | Execute  (** runtime evaluation *)
  | Catalog  (** table catalog operations *)

type position = {
  offset : int;  (** byte offset of the offending token in the SQL text *)
  token : string;  (** the token as written, ["<eof>"] at end of input *)
}

type resource =
  | Rows  (** output-row quota *)
  | Tuples  (** intermediate-tuple (memory) quota *)
  | Time  (** simulated-time deadline *)

type budget_stats = {
  rows_out : int;
  tuples : int;
  ticks : int;
}

exception Sql_error of phase * string
(** Phase-tagged failure without a source position (plan/execute/catalog). *)

exception Parse_error of { phase : phase; message : string; position : position }
(** Lex or parse failure pointing at the offending token. *)

exception Budget_exceeded of resource * budget_stats
(** A {!Budget} quota fired in strict mode, with the counters at the point
    of exhaustion. *)

exception Cancelled of budget_stats
(** The query's cancellation token was pulled.  Raised in every budget
    mode: cancellation is a user abort, not a degradation. *)

exception Internal of string
(** An engine invariant broke — a bug, not bad input. *)

val phase_to_string : phase -> string
val resource_to_string : resource -> string
val stats_to_string : budget_stats -> string

val fail : phase -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail phase fmt ...] raises {!Sql_error} with a formatted message. *)

val fail_at : phase -> offset:int -> token:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail_at phase ~offset ~token fmt ...] raises {!Parse_error}. *)

val internal : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raises {!Internal}. *)

val is_engine_error : exn -> bool
(** True for every exception the engine raises on purpose. *)

val to_string : exn -> string
(** Human-readable rendering; falls back to [Printexc] for foreign
    exceptions. *)
