(* Seeded SQL fuzzer: the correctness harness of the resource governor.

   A SplitMix64-driven generator builds random schemas, data and queries
   (rendered through [Sql_ast.to_sql], so every case round-trips the lexer
   and parser too), plus deliberately mangled SQL text for the error
   paths.  Each case is checked against the engine's safety contract:

     (a) every statement either returns, raises a *typed* engine error, or
         hits its budget — never an untyped exception ([Errors.Internal]
         counts as a failure here: it flags an engine invariant broken);
     (b) a strict budget generous enough never to fire leaves the result
         bitwise-identical to the ungoverned run;
     (c) a tight budget raises [Budget_exceeded] in strict mode and never
         raises in partial mode.

   Everything is deterministic in the seed, so a failing case's SQL can be
   replayed exactly. *)

type failure = {
  sql : string;
  reason : string;
}

type report = {
  seed : int;
  queries : int;  (* statements executed, across all checks *)
  ok : int;
  typed_errors : int;
  budget_hits : int;
  truncated_runs : int;  (* partial-mode runs that degraded *)
  untyped : failure list;
  mismatches : failure list;
}

let passed r = r.untyped = [] && r.mismatches = []

let pp ppf r =
  Fmt.pf ppf
    "seed %d: %d statements — %d ok, %d typed errors, %d budget hits, %d truncated; %d \
     untyped, %d governed/ungoverned mismatches"
    r.seed r.queries r.ok r.typed_errors r.budget_hits r.truncated_runs
    (List.length r.untyped) (List.length r.mismatches)

(* --- generators --- *)

let string_pool =
  [ "alice"; "bob"; "carol"; "dave"; "x"; ""; "lab-results"; "billing"; "o''brien" ]

let column_pool =
  [ ("id", Value.T_int); ("n", Value.T_int); ("score", Value.T_float);
    ("name", Value.T_string); ("grp", Value.T_string); ("flag", Value.T_bool) ]

let gen_value rng ty =
  if Splitmix.bool rng ~probability:0.08 then Value.Null
  else
    match ty with
    | Value.T_int -> Value.Int (Splitmix.int rng 20 - 5)
    | Value.T_float -> Value.Float (float_of_int (Splitmix.int rng 100) /. 4.)
    | Value.T_string -> Value.Str (Splitmix.pick rng string_pool)
    | Value.T_bool -> Value.Bool (Splitmix.bool rng ~probability:0.5)

(* Build 2-3 tables with random column subsets and 5-30 rows each;
   returns [(name, columns)] for the query generator. *)
let build_schema rng engine =
  let n_tables = 2 + Splitmix.int rng 2 in
  List.init n_tables (fun i ->
      let name = Printf.sprintf "t%d" i in
      let extra =
        List.filter (fun _ -> Splitmix.bool rng ~probability:0.6) (List.tl column_pool)
      in
      let columns = List.hd column_pool :: extra in
      let _ = Engine.create_table engine ~name ~columns in
      let n_rows = 5 + Splitmix.int rng 26 in
      for _ = 1 to n_rows do
        Engine.insert_row engine ~table:name
          (List.map (fun (_, ty) -> gen_value rng ty) columns)
      done;
      (name, columns))

let gen_literal rng =
  match Splitmix.int rng 5 with
  | 0 -> Sql_ast.Lit (Value.Int (Splitmix.int rng 20 - 5))
  | 1 -> Sql_ast.Lit (Value.Float (float_of_int (Splitmix.int rng 40) /. 4.))
  | 2 -> Sql_ast.Lit (Value.Str (Splitmix.pick rng string_pool))
  | 3 -> Sql_ast.Lit (Value.Bool (Splitmix.bool rng ~probability:0.5))
  | _ -> Sql_ast.Lit Value.Null

(* Random scalar expression over [columns]; depth-bounded.  Deliberately
   type-sloppy: ill-typed expressions must fail with typed errors. *)
let rec gen_expr rng columns depth =
  let leaf () =
    if columns <> [] && Splitmix.bool rng ~probability:0.55 then
      Sql_ast.col (fst (Splitmix.pick rng columns))
    else gen_literal rng
  in
  if depth <= 0 then leaf ()
  else
    match Splitmix.int rng 10 with
    | 0 | 1 -> leaf ()
    | 2 ->
      let op =
        Splitmix.pick rng
          [ Sql_ast.Add; Sql_ast.Sub; Sql_ast.Mul; Sql_ast.Div; Sql_ast.Mod;
            Sql_ast.Concat ]
      in
      Sql_ast.Binop (op, gen_expr rng columns (depth - 1), gen_expr rng columns (depth - 1))
    | 3 ->
      let op =
        Splitmix.pick rng
          [ Sql_ast.Eq; Sql_ast.Neq; Sql_ast.Lt; Sql_ast.Le; Sql_ast.Gt; Sql_ast.Ge ]
      in
      Sql_ast.Binop (op, gen_expr rng columns (depth - 1), gen_expr rng columns (depth - 1))
    | 4 ->
      let op = Splitmix.pick rng [ Sql_ast.And; Sql_ast.Or ] in
      Sql_ast.Binop (op, gen_pred rng columns (depth - 1), gen_pred rng columns (depth - 1))
    | 5 -> Sql_ast.Unop (Splitmix.pick rng [ Sql_ast.Not; Sql_ast.Neg ], gen_expr rng columns (depth - 1))
    | 6 ->
      let fn =
        (* Mostly real scalar functions, sometimes a bogus one. *)
        Splitmix.pick_weighted rng
          [ ("lower", 3); ("upper", 3); ("length", 3); ("abs", 3); ("frobnicate", 1) ]
      in
      Sql_ast.Call (fn, [ gen_expr rng columns (depth - 1) ])
    | 7 ->
      Sql_ast.In_list
        { scrutinee = gen_expr rng columns (depth - 1);
          negated = Splitmix.bool rng ~probability:0.3;
          items = List.init (1 + Splitmix.int rng 3) (fun _ -> gen_literal rng);
        }
    | 8 ->
      Sql_ast.Is_null
        { scrutinee = gen_expr rng columns (depth - 1);
          negated = Splitmix.bool rng ~probability:0.3;
        }
    | _ ->
      Sql_ast.Like
        { scrutinee = gen_expr rng columns (depth - 1);
          negated = Splitmix.bool rng ~probability:0.3;
          pattern = Sql_ast.Lit (Value.Str (Splitmix.pick rng [ "a%"; "%b%"; "_x"; "%" ]));
        }

and gen_pred rng columns depth =
  match Splitmix.int rng 3 with
  | 0 ->
    let op = Splitmix.pick rng [ Sql_ast.Eq; Sql_ast.Neq; Sql_ast.Lt; Sql_ast.Ge ] in
    Sql_ast.Binop (op, gen_expr rng columns depth, gen_expr rng columns depth)
  | 1 ->
    Sql_ast.Is_null
      { scrutinee = gen_expr rng columns depth; negated = Splitmix.bool rng ~probability:0.3 }
  | _ -> gen_expr rng columns depth

let gen_agg rng columns =
  let fn = Splitmix.pick rng [ Sql_ast.Count; Sql_ast.Sum; Sql_ast.Avg; Sql_ast.Min; Sql_ast.Max ] in
  if fn = Sql_ast.Count && Splitmix.bool rng ~probability:0.4 then
    Sql_ast.Agg { fn; distinct = false; arg = Sql_ast.Star }
  else
    Sql_ast.Agg
      { fn;
        distinct = Splitmix.bool rng ~probability:0.3;
        arg = gen_expr rng columns 1;
      }

(* A random SELECT over the generated tables; [depth] bounds derived-table
   nesting. *)
let rec gen_select rng tables depth : Sql_ast.select =
  let name, columns = Splitmix.pick rng tables in
  let from, columns =
    match Splitmix.int rng (if depth > 0 then 5 else 4) with
    | 0 | 1 -> (Sql_ast.Table { name; alias = None }, columns)
    | 2 ->
      (* self-qualified scan *)
      (Sql_ast.Table { name; alias = Some "s" }, columns)
    | 3 ->
      let rname, rcolumns = Splitmix.pick rng tables in
      let kind = Splitmix.pick rng [ Sql_ast.Inner; Sql_ast.Left; Sql_ast.Cross ] in
      let on =
        if kind = Sql_ast.Cross then None
        else
          Some
            (Sql_ast.eq
               (Sql_ast.Col { qualifier = Some "a"; name = fst (Splitmix.pick rng columns) })
               (Sql_ast.Col { qualifier = Some "b"; name = fst (Splitmix.pick rng rcolumns) }))
      in
      ( Sql_ast.Join
          { left = Sql_ast.Table { name; alias = Some "a" };
            right = Sql_ast.Table { name = rname; alias = Some "b" };
            kind;
            on;
          },
        columns @ rcolumns )
    | _ ->
      let sub = gen_select rng tables (depth - 1) in
      (* The derived table's columns are whatever the subquery projects;
         reusing the base column names is fine — unknown names must fail
         with a typed Plan error. *)
      (Sql_ast.Derived { select = sub; alias = "d" }, columns)
  in
  let grouped = Splitmix.bool rng ~probability:0.35 in
  let projections, group_by, having =
    if grouped then begin
      let key = fst (Splitmix.pick rng columns) in
      let aggs = List.init (1 + Splitmix.int rng 2) (fun _ -> gen_agg rng columns) in
      ( Sql_ast.Proj (Sql_ast.col key, None)
        :: List.map (fun a -> Sql_ast.Proj (a, None)) aggs,
        [ Sql_ast.col key ],
        (if Splitmix.bool rng ~probability:0.5 then
           Some
             (Sql_ast.Binop
                ( Splitmix.pick rng [ Sql_ast.Ge; Sql_ast.Gt ],
                  Sql_ast.Agg { fn = Sql_ast.Count; distinct = false; arg = Sql_ast.Star },
                  Sql_ast.int_lit (Splitmix.int rng 4) ))
         else None) )
    end
    else begin
      let projections =
        if Splitmix.bool rng ~probability:0.25 then [ Sql_ast.All_columns ]
        else
          List.init
            (1 + Splitmix.int rng 3)
            (fun _ ->
              if Splitmix.bool rng ~probability:0.15 then
                Sql_ast.Proj (gen_agg rng columns, None)
              else Sql_ast.Proj (gen_expr rng columns 2, None))
      in
      (projections, [], None)
    end
  in
  let where =
    if Splitmix.bool rng ~probability:0.55 then Some (gen_pred rng columns 2) else None
  in
  let order_by =
    if Splitmix.bool rng ~probability:0.4 && not grouped then
      [ (Sql_ast.col (fst (Splitmix.pick rng columns)),
         Splitmix.pick rng [ Sql_ast.Asc; Sql_ast.Desc ]) ]
    else []
  in
  Sql_ast.select ~distinct:(Splitmix.bool rng ~probability:0.2) ~from ?where ~group_by
    ?having ~order_by
    ?limit:(if Splitmix.bool rng ~probability:0.3 then Some (Splitmix.int rng 10) else None)
    ?offset:(if Splitmix.bool rng ~probability:0.15 then Some (Splitmix.int rng 5) else None)
    projections

let gen_stmt rng tables : Sql_ast.stmt =
  match Splitmix.int rng 12 with
  | 0 ->
    let first = gen_select rng tables 0 in
    let rest =
      [ (Splitmix.bool rng ~probability:0.5, gen_select rng tables 0) ]
    in
    Sql_ast.Compound { Sql_ast.first; rest }
  | 1 ->
    let name, columns = Splitmix.pick rng tables in
    (* Sometimes the wrong arity — must be a typed Execute error. *)
    let values =
      List.map (fun (_, ty) -> Sql_ast.Lit (gen_value rng ty)) columns
    in
    let values = if Splitmix.bool rng ~probability:0.2 then gen_literal rng :: values else values in
    Sql_ast.Insert { table = name; columns = None; rows = [ values ] }
  | 2 ->
    let name, columns = Splitmix.pick rng tables in
    Sql_ast.Delete { table = name; where = Some (gen_pred rng columns 1) }
  | 3 ->
    let name, columns = Splitmix.pick rng tables in
    let col, ty = Splitmix.pick rng columns in
    Sql_ast.Update
      { table = name;
        assignments = [ (col, Sql_ast.Lit (gen_value rng ty)) ];
        where = Some (gen_pred rng columns 1);
      }
  | _ -> Sql_ast.Select (gen_select rng tables (if Splitmix.int rng 3 = 0 then 1 else 0))

(* Mangle rendered SQL to exercise the lexer/parser error paths. *)
let mangle rng sql =
  let n = String.length sql in
  if n = 0 then "'"
  else
    match Splitmix.int rng 5 with
    | 0 -> String.sub sql 0 (Splitmix.int rng n) (* truncate *)
    | 1 ->
      let at = Splitmix.int rng n in
      let junk = Splitmix.pick rng [ "'"; "\""; "!"; "|"; "$"; "@"; "#"; "\x01"; "((" ] in
      String.sub sql 0 at ^ junk ^ String.sub sql at (n - at)
    | 2 ->
      (* clone a tail chunk *)
      let at = Splitmix.int rng n in
      sql ^ " " ^ String.sub sql at (n - at)
    | 3 -> sql ^ " EXTRA TRAILING TOKENS" (* trailing garbage *)
    | _ -> String.concat "" [ "SELECT FROM WHERE "; sql ]

(* --- execution harness --- *)

type outcome_class =
  | C_ok of Executor.outcome option  (* Some for result comparison *)
  | C_typed of string
  | C_budget
  | C_cancelled
  | C_untyped of string

let run_case f =
  match f () with
  | outcome -> C_ok (Some outcome)
  | exception Errors.Budget_exceeded _ -> C_budget
  | exception Errors.Cancelled _ -> C_cancelled
  | exception (Errors.Sql_error _ as e) -> C_typed (Errors.to_string e)
  | exception (Errors.Parse_error _ as e) -> C_typed (Errors.to_string e)
  | exception Errors.Internal msg -> C_untyped ("Internal: " ^ msg)
  | exception e -> C_untyped (Printexc.to_string e)

let rows_equal (a : Executor.result_set) (b : Executor.result_set) =
  Schema.column_names a.Executor.schema = Schema.column_names b.Executor.schema
  && List.length a.Executor.rows = List.length b.Executor.rows
  && List.for_all2 Row.equal a.Executor.rows b.Executor.rows

let outcomes_equal a b =
  match a, b with
  | Executor.Rows ra, Executor.Rows rb -> rows_equal ra rb
  | Executor.Affected x, Executor.Affected y -> x = y
  | Executor.Table_created x, Executor.Table_created y -> x = y
  | Executor.Table_dropped x, Executor.Table_dropped y -> x = y
  | _ -> false

let is_read_only = function
  | Sql_ast.Select _ | Sql_ast.Compound _ -> true
  | _ -> false

let run ?(queries = 500) ~seed () =
  let trace =
    match Sys.getenv_opt "FUZZ_TRACE" with
    | Some _ -> fun tag sql -> Printf.eprintf "[fuzz %s] %s\n%!" tag sql
    | None -> fun _ _ -> ()
  in
  let rng = Splitmix.create ~seed in
  let engine = Engine.create () in
  let tables = build_schema rng engine in
  let executed = ref 0 in
  let ok = ref 0 in
  let typed = ref 0 in
  let budget_hits = ref 0 in
  let truncated_runs = ref 0 in
  let untyped = ref [] in
  let mismatches = ref [] in
  let record_class sql = function
    | C_ok _ -> incr ok
    | C_typed _ -> incr typed
    | C_budget | C_cancelled -> incr budget_hits
    | C_untyped reason -> untyped := { sql; reason } :: !untyped
  in
  let exec_sql ?budget sql =
    incr executed;
    run_case (fun () -> Engine.exec ?budget engine sql)
  in
  for _ = 1 to queries do
    let stmt = gen_stmt rng tables in
    let sql = Sql_ast.to_sql stmt in
    if Splitmix.bool rng ~probability:0.2 then begin
      (* Mangled text: anything but an untyped exception. *)
      let sql = mangle rng sql in
      trace "mangled" sql;
      record_class sql (exec_sql sql)
    end
    else begin
      trace "base" sql;
      let base = exec_sql sql in
      record_class sql base;
      if is_read_only stmt then begin
        (* (b) a generous strict budget must not change the result. *)
        let generous =
          Budget.create (Budget.limits ~rows:1_000_000 ~tuples:10_000_000 ~ticks:50_000_000 ())
        in
        trace "generous" sql;
        let governed = exec_sql ~budget:generous sql in
        (match base, governed with
        | C_ok (Some a), C_ok (Some b) ->
          if not (outcomes_equal a b) then
            mismatches := { sql; reason = "governed result differs from ungoverned" } :: !mismatches
        | C_ok _, (C_budget | C_cancelled) ->
          mismatches := { sql; reason = "generous budget fired" } :: !mismatches
        | C_typed _, C_typed _ | C_ok _, C_ok _ -> ()
        | C_untyped reason, _ | _, C_untyped reason ->
          untyped := { sql; reason } :: !untyped
        | _ ->
          mismatches :=
            { sql; reason = "governed and ungoverned runs disagree on error class" }
            :: !mismatches);
        (* (c) a tight strict budget may only return or hit the budget;
           the same budget in partial mode must never raise. *)
        let tight () =
          Budget.limits ~rows:(Splitmix.int rng 4)
            ~tuples:(1 + Splitmix.int rng 30)
            ~ticks:(1 + Splitmix.int rng 100) ()
        in
        trace "tight" sql;
        record_class sql (exec_sql ~budget:(Budget.create (tight ())) sql);
        let partial = Budget.create ~mode:Budget.Partial (tight ()) in
        trace "partial" sql;
        (match exec_sql ~budget:partial sql with
        | C_ok _ ->
          incr ok;
          if Budget.truncated partial then incr truncated_runs
        | C_typed _ -> incr typed
        | C_budget ->
          mismatches := { sql; reason = "partial-mode budget raised Budget_exceeded" } :: !mismatches
        | C_cancelled -> incr budget_hits
        | C_untyped reason -> untyped := { sql; reason } :: !untyped)
      end
    end
  done;
  { seed;
    queries = !executed;
    ok = !ok;
    typed_errors = !typed;
    budget_hits = !budget_hits;
    truncated_runs = !truncated_runs;
    untyped = List.rev !untyped;
    mismatches = List.rev !mismatches;
  }

(* --- DML round-trips against a model table ---

   Two engines with identical schema and seed data.  Every generated
   INSERT / UPDATE / DELETE runs on both: the governed engine under a
   generous strict budget, the model engine ungoverned.  After each
   statement the outcome classes must agree AND the full table contents
   must be bitwise-identical — the governor must never leave a DML
   statement half-applied or applied differently.  Mangled renderings keep
   exercising the only-typed-errors-escape invariant on the write path. *)

let dml_columns =
  [ ("id", Value.T_int); ("n", Value.T_int); ("score", Value.T_float);
    ("name", Value.T_string); ("flag", Value.T_bool) ]

let gen_dml rng ~fresh_id : Sql_ast.stmt =
  match Splitmix.pick_weighted rng [ (`Insert, 4); (`Update, 4); (`Delete, 2) ] with
  | `Insert ->
    let values =
      List.mapi
        (fun i (_, ty) ->
          if i = 0 then Sql_ast.Lit (Value.Int (fresh_id ()))
          else Sql_ast.Lit (gen_value rng ty))
        dml_columns
    in
    (* Sometimes the wrong arity — must be the same typed error on both. *)
    let values =
      if Splitmix.bool rng ~probability:0.12 then gen_literal rng :: values else values
    in
    Sql_ast.Insert { table = "m0"; columns = None; rows = [ values ] }
  | `Update ->
    let col, ty = Splitmix.pick rng dml_columns in
    (* Type-sloppy assignments on purpose: ill-typed expressions must fail
       with the same typed error on both engines, leaving both unchanged. *)
    let value =
      if Splitmix.bool rng ~probability:0.3 then gen_expr rng dml_columns 1
      else Sql_ast.Lit (gen_value rng ty)
    in
    Sql_ast.Update
      { table = "m0";
        assignments = [ (col, value) ];
        where = Some (gen_pred rng dml_columns 1);
      }
  | `Delete -> Sql_ast.Delete { table = "m0"; where = Some (gen_pred rng dml_columns 1) }

let run_dml ?(ops = 300) ~seed () =
  let rng = Splitmix.create ~seed in
  let governed = Engine.create () in
  let model = Engine.create () in
  List.iter
    (fun e -> ignore (Engine.create_table e ~name:"m0" ~columns:dml_columns))
    [ governed; model ];
  for i = 0 to 19 do
    let row =
      Value.Int i
      :: List.map (fun (_, ty) -> gen_value rng ty) (List.tl dml_columns)
    in
    List.iter (fun e -> Engine.insert_row e ~table:"m0" row) [ governed; model ]
  done;
  let next_id = ref 100 in
  let fresh_id () = incr next_id; !next_id in
  let executed = ref 0 in
  let ok = ref 0 in
  let typed = ref 0 in
  let budget_hits = ref 0 in
  let untyped = ref [] in
  let mismatches = ref [] in
  let generous () =
    Budget.create (Budget.limits ~rows:1_000_000 ~tuples:10_000_000 ~ticks:50_000_000 ())
  in
  let table_image engine =
    match Engine.query engine "SELECT * FROM m0" with
    | rs -> Ok rs
    | exception e -> Error (Printexc.to_string e)
  in
  for _ = 1 to ops do
    let stmt = gen_dml rng ~fresh_id in
    let sql = Sql_ast.to_sql stmt in
    let sql = if Splitmix.bool rng ~probability:0.15 then mangle rng sql else sql in
    executed := !executed + 2;
    let on_governed = run_case (fun () -> Engine.exec ~budget:(generous ()) governed sql) in
    let on_model = run_case (fun () -> Engine.exec model sql) in
    (match on_governed, on_model with
    | C_ok (Some a), C_ok (Some b) ->
      incr ok;
      if not (outcomes_equal a b) then
        mismatches :=
          { sql; reason = "governed DML outcome differs from model" } :: !mismatches
    | C_typed _, C_typed _ -> incr typed
    | (C_budget | C_cancelled), _ ->
      incr budget_hits;
      mismatches := { sql; reason = "generous budget fired on DML" } :: !mismatches
    | C_untyped reason, _ | _, C_untyped reason -> untyped := { sql; reason } :: !untyped
    | _ ->
      mismatches :=
        { sql; reason = "governed and model DML disagree on error class" } :: !mismatches);
    match table_image governed, table_image model with
    | Ok a, Ok b ->
      if not (rows_equal a b) then
        mismatches :=
          { sql; reason = "table contents diverged after DML" } :: !mismatches
    | _, _ ->
      untyped := { sql; reason = "table image query failed" } :: !untyped
  done;
  { seed;
    queries = !executed;
    ok = !ok;
    typed_errors = !typed;
    budget_hits = !budget_hits;
    truncated_runs = 0;
    untyped = List.rev !untyped;
    mismatches = List.rev !mismatches;
  }
