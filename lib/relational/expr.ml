(* Compilation of AST expressions into closures over rows.

   Compilation resolves column references against a schema once, so
   per-row evaluation does no name lookups.  Aggregate nodes compile to
   references into an "aggregate segment": an array of values computed by
   the executor per group, identified positionally by structural equality
   with the query's collected aggregate expressions.

   NULL follows SQL three-valued logic: comparisons involving NULL are
   NULL, AND/OR are Kleene connectives, and WHERE/HAVING treat a NULL
   predicate as false ([is_true]). *)

type ctx = {
  schema : Schema.t;
  agg_exprs : Sql_ast.expr array;
}

type compiled = Row.t -> Value.t array -> Value.t

let scalar_ctx schema = { schema; agg_exprs = [||] }

let is_true = function Value.Bool true -> true | _ -> false

let of_bool3 = function None -> Value.Null | Some b -> Value.Bool b

(* SQL LIKE with % (any run) and _ (any single char); naive backtracking is
   fine at our pattern sizes. *)
let like_match ~pattern text =
  let np = String.length pattern and nt = String.length text in
  let rec go p t =
    if p = np then t = nt
    else
      match pattern.[p] with
      | '%' ->
        let rec try_from t' = t' <= nt && (go (p + 1) t' || try_from (t' + 1)) in
        try_from t
      | '_' -> t < nt && go (p + 1) (t + 1)
      | c -> t < nt && text.[t] = c && go (p + 1) (t + 1)
  in
  go 0 0

let arith_op op a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y ->
    (match op with
    | Sql_ast.Add -> Value.Int (x + y)
    | Sql_ast.Sub -> Value.Int (x - y)
    | Sql_ast.Mul -> Value.Int (x * y)
    | Sql_ast.Div ->
      if y = 0 then Errors.fail Errors.Execute "division by zero" else Value.Int (x / y)
    | Sql_ast.Mod ->
      if y = 0 then Errors.fail Errors.Execute "modulo by zero" else Value.Int (x mod y)
    | _ -> Errors.internal "non-arithmetic operator in arith_op")
  | _ ->
    (match Value.as_float a, Value.as_float b with
    | Some x, Some y ->
      (match op with
      | Sql_ast.Add -> Value.Float (x +. y)
      | Sql_ast.Sub -> Value.Float (x -. y)
      | Sql_ast.Mul -> Value.Float (x *. y)
      | Sql_ast.Div ->
        if y = 0. then Errors.fail Errors.Execute "division by zero" else Value.Float (x /. y)
      | Sql_ast.Mod -> Value.Float (Float.rem x y)
      | _ -> Errors.internal "non-arithmetic operator in arith_op")
    | _ ->
      Errors.fail Errors.Execute "arithmetic on non-numeric values: %s, %s"
        (Value.to_string a) (Value.to_string b))

let compare_op op a b =
  if Value.is_null a || Value.is_null b then Value.Null
  else begin
    let c = Value.compare a b in
    let result =
      match op with
      | Sql_ast.Eq -> c = 0
      | Sql_ast.Neq -> c <> 0
      | Sql_ast.Lt -> c < 0
      | Sql_ast.Le -> c <= 0
      | Sql_ast.Gt -> c > 0
      | Sql_ast.Ge -> c >= 0
      | _ -> Errors.internal "non-comparison operator in compare_op"
    in
    Value.Bool result
  end

let to_bool3 = function
  | Value.Null -> None
  | Value.Bool b -> Some b
  | v -> Errors.fail Errors.Execute "expected boolean, got %s" (Value.to_string v)

let apply_scalar_function name args =
  match name, args with
  | "lower", [ Value.Str s ] -> Value.Str (String.lowercase_ascii s)
  | "upper", [ Value.Str s ] -> Value.Str (String.uppercase_ascii s)
  | "length", [ Value.Str s ] -> Value.Int (String.length s)
  | ("lower" | "upper" | "length"), [ Value.Null ] -> Value.Null
  | "abs", [ Value.Int i ] -> Value.Int (abs i)
  | "abs", [ Value.Float f ] -> Value.Float (Float.abs f)
  | "abs", [ Value.Null ] -> Value.Null
  | "round", [ Value.Float f ] -> Value.Int (int_of_float (Float.round f))
  | "round", [ Value.Int i ] -> Value.Int i
  | "round", [ Value.Null ] -> Value.Null
  | "coalesce", args ->
    (match List.find_opt (fun v -> not (Value.is_null v)) args with
    | Some v -> v
    | None -> Value.Null)
  | "ifnull", [ a; b ] -> if Value.is_null a then b else a
  | "nullif", [ a; b ] -> if Value.equal a b then Value.Null else a
  | "trim", [ Value.Str s ] -> Value.Str (String.trim s)
  | "trim", [ Value.Null ] -> Value.Null
  | "substr", [ Value.Str s; Value.Int start; Value.Int len ] ->
    (* 1-based start, SQL style. *)
    let n = String.length s in
    let start = max 0 (start - 1) in
    let len = max 0 (min len (n - start)) in
    if start >= n then Value.Str "" else Value.Str (String.sub s start len)
  | _ ->
    Errors.fail Errors.Execute "unknown function or bad arguments: %s/%d" name
      (List.length args)

let rec compile ctx (expr : Sql_ast.expr) : compiled =
  match expr with
  | Sql_ast.Lit v -> fun _ _ -> v
  | Sql_ast.Col { qualifier; name } ->
    let i = Schema.find_exn ctx.schema ?qualifier name in
    fun row _ -> Row.get row i
  | Sql_ast.Star -> Errors.fail Errors.Plan "'*' is only valid in COUNT(*) or SELECT *"
  | Sql_ast.In_select _ | Sql_ast.Exists _ | Sql_ast.Scalar_select _ ->
    (* The executor rewrites IN (SELECT ...) to a literal list before
       compiling; reaching here means a subquery survived in a context that
       does not support it. *)
    Errors.fail Errors.Plan "subqueries are only supported in WHERE and HAVING"
  | Sql_ast.Agg _ as agg ->
    let position = ref (-1) in
    Array.iteri (fun i e -> if Sql_ast.equal_expr e agg then position := i) ctx.agg_exprs;
    if !position < 0 then
      Errors.fail Errors.Plan "aggregate %s not allowed in this context"
        (Sql_ast.expr_to_sql agg);
    let i = !position in
    fun _ aggs -> aggs.(i)
  | Sql_ast.Unop (Sql_ast.Not, e) ->
    let ce = compile ctx e in
    fun row aggs ->
      (match to_bool3 (ce row aggs) with
      | None -> Value.Null
      | Some b -> Value.Bool (not b))
  | Sql_ast.Unop (Sql_ast.Neg, e) ->
    let ce = compile ctx e in
    fun row aggs ->
      (match ce row aggs with
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | Value.Null -> Value.Null
      | v -> Errors.fail Errors.Execute "cannot negate %s" (Value.to_string v))
  | Sql_ast.Binop (Sql_ast.And, a, b) ->
    let ca = compile ctx a and cb = compile ctx b in
    fun row aggs ->
      (match to_bool3 (ca row aggs) with
      | Some false -> Value.Bool false
      | Some true -> of_bool3 (to_bool3 (cb row aggs))
      | None ->
        (match to_bool3 (cb row aggs) with
        | Some false -> Value.Bool false
        | Some true | None -> Value.Null))
  | Sql_ast.Binop (Sql_ast.Or, a, b) ->
    let ca = compile ctx a and cb = compile ctx b in
    fun row aggs ->
      (match to_bool3 (ca row aggs) with
      | Some true -> Value.Bool true
      | Some false -> of_bool3 (to_bool3 (cb row aggs))
      | None ->
        (match to_bool3 (cb row aggs) with
        | Some true -> Value.Bool true
        | Some false | None -> Value.Null))
  | Sql_ast.Binop (Sql_ast.Concat, a, b) ->
    let ca = compile ctx a and cb = compile ctx b in
    fun row aggs ->
      let va = ca row aggs and vb = cb row aggs in
      if Value.is_null va || Value.is_null vb then Value.Null
      else Value.Str (Value.to_string va ^ Value.to_string vb)
  | Sql_ast.Binop (((Sql_ast.Add | Sql_ast.Sub | Sql_ast.Mul | Sql_ast.Div | Sql_ast.Mod) as op), a, b)
    ->
    let ca = compile ctx a and cb = compile ctx b in
    fun row aggs -> arith_op op (ca row aggs) (cb row aggs)
  | Sql_ast.Binop (((Sql_ast.Eq | Sql_ast.Neq | Sql_ast.Lt | Sql_ast.Le | Sql_ast.Gt | Sql_ast.Ge) as op), a, b)
    ->
    let ca = compile ctx a and cb = compile ctx b in
    fun row aggs -> compare_op op (ca row aggs) (cb row aggs)
  | Sql_ast.Call (name, args) ->
    let cargs = List.map (compile ctx) args in
    fun row aggs -> apply_scalar_function name (List.map (fun c -> c row aggs) cargs)
  | Sql_ast.In_list { scrutinee; negated; items } ->
    let cs = compile ctx scrutinee in
    let literals =
      List.filter_map (function Sql_ast.Lit v -> Some v | _ -> None) items
    in
    if List.length literals = List.length items then begin
      (* All-literal lists (the common case — consent exclusion lists can be
         large) become a hash set built once at compile time. *)
      let set = Hashtbl.create (List.length literals) in
      let has_null = List.exists Value.is_null literals in
      List.iter
        (fun v -> if not (Value.is_null v) then Hashtbl.replace set v ())
        literals;
      (* Hash probe first; numeric cross-type equality (2 = 2.0) is not
         structural, so numbers that miss fall back to a scan. *)
      let mem v =
        Hashtbl.mem set v
        ||
        match v with
        | Value.Int _ | Value.Float _ ->
          Hashtbl.fold (fun x () acc -> acc || Value.equal v x) set false
        | _ -> false
      in
      fun row aggs ->
        let v = cs row aggs in
        if Value.is_null v then Value.Null
        else if mem v then Value.Bool (not negated)
        else if has_null then Value.Null
        else Value.Bool negated
    end
    else begin
      let citems = List.map (compile ctx) items in
      fun row aggs ->
        let v = cs row aggs in
        if Value.is_null v then Value.Null
        else begin
          let vs = List.map (fun c -> c row aggs) citems in
          let found = List.exists (fun x -> (not (Value.is_null x)) && Value.equal v x) vs in
          let has_null = List.exists Value.is_null vs in
          if found then Value.Bool (not negated)
          else if has_null then Value.Null
          else Value.Bool negated
        end
    end
  | Sql_ast.Like { scrutinee; negated; pattern } ->
    let cs = compile ctx scrutinee and cp = compile ctx pattern in
    fun row aggs ->
      (match cs row aggs, cp row aggs with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | Value.Str s, Value.Str p ->
        let m = like_match ~pattern:p s in
        Value.Bool (if negated then not m else m)
      | a, b ->
        Errors.fail Errors.Execute "LIKE expects strings, got %s and %s" (Value.to_string a)
          (Value.to_string b))
  | Sql_ast.Is_null { scrutinee; negated } ->
    let cs = compile ctx scrutinee in
    fun row aggs ->
      let isnull = Value.is_null (cs row aggs) in
      Value.Bool (if negated then not isnull else isnull)
  | Sql_ast.Between { scrutinee; negated; low; high } ->
    let cs = compile ctx scrutinee and cl = compile ctx low and ch = compile ctx high in
    fun row aggs ->
      let v = cs row aggs and lo = cl row aggs and hi = ch row aggs in
      if Value.is_null v || Value.is_null lo || Value.is_null hi then Value.Null
      else begin
        let inside = Value.compare v lo >= 0 && Value.compare v hi <= 0 in
        Value.Bool (if negated then not inside else inside)
      end

(* Best-effort static type for result schemas; falls back to TEXT. *)
let rec infer_type schema (expr : Sql_ast.expr) : Value.ty =
  match expr with
  | Sql_ast.Lit v -> Option.value (Value.type_of v) ~default:Value.T_string
  | Sql_ast.Col { qualifier; name } ->
    (match Schema.find schema ?qualifier name with
    | Ok i -> Schema.ty_at schema i
    | Error _ -> Value.T_string)
  | Sql_ast.Star -> Value.T_string
  | Sql_ast.Agg { fn = Sql_ast.Count; _ } -> Value.T_int
  | Sql_ast.Agg { fn = Sql_ast.Avg; _ } -> Value.T_float
  | Sql_ast.Agg { fn = Sql_ast.Sum | Sql_ast.Min | Sql_ast.Max; arg; _ } ->
    infer_type schema arg
  | Sql_ast.Unop (Sql_ast.Not, _) -> Value.T_bool
  | Sql_ast.Unop (Sql_ast.Neg, e) -> infer_type schema e
  | Sql_ast.Binop ((Sql_ast.Add | Sql_ast.Sub | Sql_ast.Mul | Sql_ast.Div | Sql_ast.Mod), a, b) ->
    (match infer_type schema a, infer_type schema b with
    | Value.T_int, Value.T_int -> Value.T_int
    | _ -> Value.T_float)
  | Sql_ast.Binop (Sql_ast.Concat, _, _) -> Value.T_string
  | Sql_ast.Binop ((Sql_ast.Eq | Sql_ast.Neq | Sql_ast.Lt | Sql_ast.Le | Sql_ast.Gt | Sql_ast.Ge | Sql_ast.And | Sql_ast.Or), _, _)
    ->
    Value.T_bool
  | Sql_ast.Call (("length" | "round" | "abs"), _) -> Value.T_int
  | Sql_ast.Call (_, _) -> Value.T_string
  | Sql_ast.In_list _ | Sql_ast.In_select _ | Sql_ast.Exists _ | Sql_ast.Like _
  | Sql_ast.Is_null _ | Sql_ast.Between _ ->
    Value.T_bool
  | Sql_ast.Scalar_select _ -> Value.T_string
