(* Growable array.  OCaml 5.1 has no Dynarray in the stdlib; tables and the
   audit store need amortised O(1) append with O(1) random access. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let make capacity dummy = { data = Array.make (max capacity 1) dummy; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then Errors.internal "Vec.get: index %d out of bounds (len %d)" i t.len;
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then Errors.internal "Vec.set: index %d out of bounds (len %d)" i t.len;
  t.data.(i) <- x

let ensure_capacity t n x =
  if n > Array.length t.data then begin
    let capacity = max n (max 8 (2 * Array.length t.data)) in
    let data = Array.make capacity x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.len + 1) x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then Errors.internal "Vec.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t

let of_array a = { data = Array.copy a; len = Array.length a }

let map f t =
  if t.len = 0 then create ()
  else begin
    let data = Array.init t.len (fun i -> f t.data.(i)) in
    { data; len = t.len }
  end

let filter p t =
  let out = create () in
  iter (fun x -> if p x then push out x) t;
  out

let copy t = { data = Array.copy t.data; len = t.len }
