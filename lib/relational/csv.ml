(* Minimal RFC-4180-style CSV reader/writer for loading fixture data and
   exporting experiment results.  Quoted fields may contain commas, quotes
   ("" escape) and newlines.

   The lexer records whether each field was quoted: an unquoted empty field
   is the NULL spelling, while a quoted empty field [""] is a genuine empty
   string on STRING columns — the writer emits [Str ""] as [""] so the two
   round-trip distinguishably. *)

type field = {
  text : string;
  quoted : bool;
}

(* Each record is paired with the 1-based physical line its first field
   starts on, so parse errors upstream can point at the offending line —
   quoted fields may span lines, which is why the record index alone is
   not enough. *)
let parse_field_seq_numbered (input : string) : (int * field list) list =
  let n = String.length input in
  let records = ref [] in
  let fields = ref [] in
  let buffer = Buffer.create 32 in
  let field_quoted = ref false in
  let line = ref 1 in
  let record_start = ref 1 in
  let flush_field () =
    fields := { text = Buffer.contents buffer; quoted = !field_quoted } :: !fields;
    Buffer.clear buffer;
    field_quoted := false
  in
  let flush_record () =
    flush_field ();
    records := (!record_start, List.rev !fields) :: !records;
    fields := []
  in
  let newline () =
    incr line;
    record_start := !line
  in
  let rec plain i =
    if i >= n then begin
      if Buffer.length buffer > 0 || !field_quoted || !fields <> [] then flush_record ()
    end
    else
      match input.[i] with
      | ',' -> flush_field (); plain (i + 1)
      | '\r' when i + 1 < n && input.[i + 1] = '\n' ->
        flush_record ();
        newline ();
        plain (i + 2)
      | '\n' ->
        flush_record ();
        newline ();
        plain (i + 1)
      | '"' when Buffer.length buffer = 0 ->
        field_quoted := true;
        quoted (i + 1)
      | c ->
        Buffer.add_char buffer c;
        plain (i + 1)
  and quoted i =
    if i >= n then Errors.fail Errors.Parse "unterminated quoted CSV field"
    else
      match input.[i] with
      | '"' when i + 1 < n && input.[i + 1] = '"' ->
        Buffer.add_char buffer '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | '\n' as c ->
        (* Inside quotes the newline is data, but it still advances the
           physical line counter. *)
        incr line;
        Buffer.add_char buffer c;
        quoted (i + 1)
      | c ->
        Buffer.add_char buffer c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !records

let parse_field_seq (input : string) : field list list =
  List.map snd (parse_field_seq_numbered input)

let parse_line_seq (input : string) : string list list =
  List.map (List.map (fun f -> f.text)) (parse_field_seq input)

let parse_line_seq_numbered (input : string) : (int * string list) list =
  List.map
    (fun (line, fields) -> (line, List.map (fun f -> f.text) fields))
    (parse_field_seq_numbered input)

let parse_value ?(quoted = false) ty text =
  if String.equal text "" then begin
    (* Only a *quoted* empty field on a STRING column is the empty string;
       everywhere else emptiness means absence. *)
    match (ty : Value.ty) with
    | Value.T_string when quoted -> Value.Str ""
    | _ -> Value.Null
  end
  else
    match (ty : Value.ty) with
    | Value.T_int ->
      (match int_of_string_opt text with
      | Some i -> Value.Int i
      | None -> Errors.fail Errors.Parse "CSV: %S is not an integer" text)
    | Value.T_float ->
      (match float_of_string_opt text with
      | Some f -> Value.Float f
      | None -> Errors.fail Errors.Parse "CSV: %S is not a float" text)
    | Value.T_bool ->
      (match String.lowercase_ascii text with
      | "true" | "t" | "1" -> Value.Bool true
      | "false" | "f" | "0" -> Value.Bool false
      | _ -> Errors.fail Errors.Parse "CSV: %S is not a boolean" text)
    | Value.T_string -> Value.Str text

(* [load_into table csv ~has_header] appends parsed rows; column order must
   match the table schema. *)
let load_into table csv ~has_header =
  let records = parse_field_seq csv in
  let records =
    if has_header then (match records with _ :: r -> r | [] -> []) else records
  in
  let schema = Table.schema table in
  List.iter
    (fun fields ->
      if List.length fields <> Schema.arity schema then
        Errors.fail Errors.Parse "CSV: row arity %d does not match schema arity %d"
          (List.length fields) (Schema.arity schema);
      let row =
        List.mapi
          (fun i f -> parse_value ~quoted:f.quoted (Schema.ty_at schema i) f.text)
          fields
      in
      Table.insert table (Row.of_list row))
    records;
  List.length records

let escape_field s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quote then s
  else begin
    let buffer = Buffer.create (String.length s + 2) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c -> if c = '"' then Buffer.add_string buffer "\"\"" else Buffer.add_char buffer c)
      s;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end

let value_to_field = function
  | Value.Null -> ""
  | Value.Str "" -> "\"\"" (* distinguishable from NULL's bare empty field *)
  | v -> escape_field (Value.to_string v)

let result_to_csv (schema : Schema.t) rows =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (String.concat "," (Schema.column_names schema));
  Buffer.add_char buffer '\n';
  List.iter
    (fun row ->
      Buffer.add_string buffer
        (String.concat "," (List.map value_to_field (Row.to_list row)));
      Buffer.add_char buffer '\n')
    rows;
  Buffer.contents buffer
