(** Per-query resource governor: quotas, a simulated-time deadline, and a
    cooperative cancellation token, charged at operator boundaries.

    Create one {!t} per top-level statement (Engine does this for you via
    its [?budget] arguments) and the executor charges it as it works:
    a {e tick} per unit of work, a {e tuple} per intermediate row
    materialised, a {e row} per top-level result row.

    In {!Strict} mode (the default) a quota that fires raises
    {!Errors.Budget_exceeded}.  In {!Partial} mode operators instead stop
    consuming input at the quota: the result is a correct answer over a
    prefix of the data, flagged {!truncated} so callers can qualify it as a
    lower bound — the refinement loop's graceful-degradation path.
    Cancellation always raises {!Errors.Cancelled}, in both modes.

    A budget whose quotas never fire leaves results bitwise-identical to an
    ungoverned run. *)

type limits = {
  max_rows : int option;  (** top-level output rows *)
  max_tuples : int option;  (** intermediate tuples materialised *)
  deadline : int option;  (** total work ticks (simulated time) *)
  max_wall_ms : int option;  (** elapsed wall-clock milliseconds *)
}

val unlimited : limits

val limits : ?rows:int -> ?tuples:int -> ?ticks:int -> ?wall_ms:int -> unit -> limits
(** Omitted fields are unlimited. *)

val limits_min : limits -> limits -> limits
(** Pointwise tightest-wins combination — [None] defers to the other
    side, two quotas take the minimum.  Composes an admission grant with
    a standing query-limits policy. *)

type mode =
  | Strict  (** raise on exhaustion *)
  | Partial  (** truncate input on exhaustion; result is a lower bound *)

type cancel
(** Cooperative cancellation token, shareable across queries. *)

val cancel_token : unit -> cancel
val cancel : cancel -> unit
val is_cancelled : cancel -> bool

type t

val create :
  ?mode:mode -> ?cancel:cancel -> ?cancel_at:int -> ?now:(unit -> float) -> limits -> t
(** [cancel_at] is a deterministic test hook: the token trips when the
    tick counter reaches it.  [now] supplies the wall clock in
    milliseconds for [max_wall_ms] (default [Unix.gettimeofday]-based);
    inject a fake clock to make wall-deadline tests deterministic.  The
    clock is read once at creation and then on every tick while a wall
    deadline is set; without one it is never consulted. *)

val default : unit -> t
(** A fresh strict budget with unlimited quotas — the ungoverned path. *)

val mode : t -> mode

val stats : t -> Errors.budget_stats
(** Counters so far (also carried inside the budget exceptions). *)

val exhausted : t -> Errors.resource option
(** The first quota that fired, if any. *)

val truncated : t -> bool
(** True when a Partial-mode quota fired: the result covers only a prefix
    of the input and any statistic over it is a lower bound. *)

(** {2 Operator charge points} — used by the executor. *)

val step : t -> bool
(** Charge one work tick.  [true] to continue; [false] (Partial only) when
    a deadline (simulated or wall-clock) passed.
    @raise Errors.Cancelled when the token is pulled.
    @raise Errors.Budget_exceeded (Strict) when a deadline passes. *)

val admit : t -> bool
(** {!step} plus one materialised tuple against the tuple quota. *)

val admit_list : t -> 'a list -> 'a list
(** Charge a whole materialised row list.  Strict: charges each element
    and returns the list unchanged (physically the same list).  Partial:
    returns the admitted prefix. *)

val charge_rows : t -> 'a list -> 'a list
(** Charge the top-level result against the row quota.  Strict: raise when
    over; Partial: truncate the result to the quota. *)
