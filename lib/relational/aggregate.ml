(* Streaming aggregate accumulators.  One accumulator instance per
   (aggregate expression, group); DISTINCT variants keep a value hash set. *)

module Value_tbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type numeric_sum = {
  mutable int_sum : int;
  mutable float_sum : float;
  mutable saw_float : bool;
  mutable non_null : int;
}

type kind =
  | Acc_count of { mutable n : int }
  | Acc_sum of numeric_sum
  | Acc_avg of numeric_sum
  | Acc_min of { mutable best : Value.t option }
  | Acc_max of { mutable best : Value.t option }

type t = {
  kind : kind;
  seen : unit Value_tbl.t option; (* Some for DISTINCT *)
  counts_star : bool;
  budget : Budget.t option; (* charged when the DISTINCT set grows *)
}

let fresh_sum () = { int_sum = 0; float_sum = 0.; saw_float = false; non_null = 0 }

let create ?budget (fn : Sql_ast.agg_fn) ~distinct ~counts_star =
  let kind =
    match fn with
    | Sql_ast.Count -> Acc_count { n = 0 }
    | Sql_ast.Sum -> Acc_sum (fresh_sum ())
    | Sql_ast.Avg -> Acc_avg (fresh_sum ())
    | Sql_ast.Min -> Acc_min { best = None }
    | Sql_ast.Max -> Acc_max { best = None }
  in
  { kind;
    seen = (if distinct then Some (Value_tbl.create 64) else None);
    counts_star;
    budget;
  }

let add_numeric sum v =
  match v with
  | Value.Int i ->
    sum.int_sum <- sum.int_sum + i;
    sum.non_null <- sum.non_null + 1
  | Value.Float f ->
    sum.float_sum <- sum.float_sum +. f;
    sum.saw_float <- true;
    sum.non_null <- sum.non_null + 1
  | Value.Null -> ()
  | v -> Errors.fail Errors.Execute "cannot aggregate non-numeric value %s" (Value.to_string v)

(* [step t v] feeds one input value.  For COUNT star the value is ignored and
   every row counts; otherwise SQL semantics skip NULLs. *)
let step t v =
  let skip =
    (not t.counts_star)
    &&
    (Value.is_null v
    ||
    match t.seen with
    | Some seen ->
      if Value_tbl.mem seen v then true
      else begin
        (* Growing the DISTINCT set materialises a tuple.  Strict budgets
           raise out of here; a partial budget at quota skips the value —
           the truncated count stays a lower bound. *)
        let admitted =
          match t.budget with Some b -> Budget.admit b | None -> true
        in
        if admitted then Value_tbl.add seen v ();
        not admitted
      end
    | None -> false)
  in
  if not skip then
    match t.kind with
    | Acc_count c -> c.n <- c.n + 1
    | Acc_sum sum | Acc_avg sum -> add_numeric sum v
    | Acc_min m ->
      (match m.best with
      | None -> m.best <- Some v
      | Some b -> if Value.compare v b < 0 then m.best <- Some v)
    | Acc_max m ->
      (match m.best with
      | None -> m.best <- Some v
      | Some b -> if Value.compare v b > 0 then m.best <- Some v)

let final t =
  match t.kind with
  | Acc_count c -> Value.Int c.n
  | Acc_sum sum ->
    if sum.non_null = 0 then Value.Null
    else if sum.saw_float then Value.Float (sum.float_sum +. float_of_int sum.int_sum)
    else Value.Int sum.int_sum
  | Acc_avg sum ->
    if sum.non_null = 0 then Value.Null
    else Value.Float ((sum.float_sum +. float_of_int sum.int_sum) /. float_of_int sum.non_null)
  | Acc_min m -> (match m.best with Some v -> v | None -> Value.Null)
  | Acc_max m -> (match m.best with Some v -> v | None -> Value.Null)
