(** Recursive-descent SQL parser.

    Supported statements: SELECT (DISTINCT, joins, WHERE, GROUP BY, HAVING,
    ORDER BY, LIMIT/OFFSET, aggregates including COUNT(DISTINCT e) and
    COUNT( * ), [IN (SELECT ...)] subqueries), CREATE TABLE, DROP TABLE,
    INSERT, DELETE and UPDATE. *)

val parse_stmt : string -> Sql_ast.stmt
(** Parses one statement (an optional trailing [;] is accepted).
    @raise Errors.Parse_error (phase [Lex] or [Parse]) on malformed input,
    pointing at the offending token. *)

val parse_expr_string : string -> Sql_ast.expr
(** Parses a standalone expression, e.g. a HAVING condition fragment.
    @raise Errors.Parse_error (phase [Lex] or [Parse]) on malformed input. *)
