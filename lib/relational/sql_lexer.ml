(* Hand-written SQL lexer.  Keywords are not distinguished here — the parser
   matches identifiers case-insensitively, so user tables may freely use
   names like "status" that are keywords elsewhere.

   Every token carries the byte offset of its first character, so lex and
   parse failures can point at the offending token ([Errors.Parse_error]). *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star_tok
  | Plus
  | Minus
  | Slash
  | Percent
  | Eq_tok
  | Neq_tok
  | Lt_tok
  | Le_tok
  | Gt_tok
  | Ge_tok
  | Concat_tok
  | Semicolon
  | Eof

let token_to_string = function
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | String_lit s -> "'" ^ s ^ "'"
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dot -> "."
  | Star_tok -> "*"
  | Plus -> "+"
  | Minus -> "-"
  | Slash -> "/"
  | Percent -> "%"
  | Eq_tok -> "="
  | Neq_tok -> "<>"
  | Lt_tok -> "<"
  | Le_tok -> "<="
  | Gt_tok -> ">"
  | Ge_tok -> ">="
  | Concat_tok -> "||"
  | Semicolon -> ";"
  | Eof -> "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* [tokenize s] returns the positioned token list or raises
   [Errors.Parse_error] with phase [Lex].  Vocabulary values containing '-'
   (e.g. lab-results) must appear as string literals or double-quoted
   identifiers, never as bare identifiers. *)
let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let pos = ref 0 in
  let fail_lex ~start ~token fmt = Errors.fail_at Errors.Lex ~offset:start ~token fmt in
  let emit ~start t = tokens := (t, start) :: !tokens in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let read_while p =
    let start = !pos in
    while !pos < n && p input.[!pos] do
      advance ()
    done;
    String.sub input start (!pos - start)
  in
  let read_string_literal start =
    (* Opening quote consumed by caller; '' is an escaped quote. *)
    let buffer = Buffer.create 16 in
    let rec go () =
      if !pos >= n then
        fail_lex ~start ~token:(String.sub input start (n - start))
          "unterminated string literal"
      else begin
        let c = input.[!pos] in
        advance ();
        if c = '\'' then begin
          if !pos < n && input.[!pos] = '\'' then begin
            Buffer.add_char buffer '\'';
            advance ();
            go ()
          end
        end
        else begin
          Buffer.add_char buffer c;
          go ()
        end
      end
    in
    go ();
    Buffer.contents buffer
  in
  let read_number start =
    let integral = read_while is_digit in
    let is_float =
      !pos + 1 < n && input.[!pos] = '.' && is_digit input.[!pos + 1]
    in
    if is_float then begin
      advance ();
      let fractional = read_while is_digit in
      let text = integral ^ "." ^ fractional in
      match float_of_string_opt text with
      | Some f -> emit ~start (Float_lit f)
      | None -> fail_lex ~start ~token:text "malformed numeric literal"
    end
    else
      match int_of_string_opt integral with
      | Some i -> emit ~start (Int_lit i)
      | None -> fail_lex ~start ~token:integral "integer literal out of range"
  in
  let rec loop () =
    match peek () with
    | None -> ()
    | Some c ->
      let start = !pos in
      let emit t = emit ~start t in
      (match c with
      | ' ' | '\t' | '\n' | '\r' -> advance ()
      | '(' -> advance (); emit Lparen
      | ')' -> advance (); emit Rparen
      | ',' -> advance (); emit Comma
      | '.' -> advance (); emit Dot
      | '*' -> advance (); emit Star_tok
      | '+' -> advance (); emit Plus
      | '-' ->
        advance ();
        if peek () = Some '-' then begin
          (* line comment *)
          advance ();
          let _ = read_while (fun c -> c <> '\n') in
          ()
        end
        else emit Minus
      | '/' -> advance (); emit Slash
      | '%' -> advance (); emit Percent
      | ';' -> advance (); emit Semicolon
      | '=' -> advance (); emit Eq_tok
      | '!' ->
        advance ();
        if peek () = Some '=' then begin advance (); emit Neq_tok end
        else fail_lex ~start ~token:"!" "unexpected character '!'"
      | '<' ->
        advance ();
        (match peek () with
        | Some '=' -> advance (); emit Le_tok
        | Some '>' -> advance (); emit Neq_tok
        | Some _ | None -> emit Lt_tok)
      | '>' ->
        advance ();
        (match peek () with
        | Some '=' -> advance (); emit Ge_tok
        | Some _ | None -> emit Gt_tok)
      | '|' ->
        advance ();
        if peek () = Some '|' then begin advance (); emit Concat_tok end
        else fail_lex ~start ~token:"|" "unexpected character '|'"
      | '\'' ->
        advance ();
        emit (String_lit (read_string_literal start))
      | '"' ->
        (* Double-quoted identifier. *)
        advance ();
        let name = read_while (fun c -> c <> '"') in
        if !pos >= n then
          fail_lex ~start ~token:("\"" ^ name) "unterminated quoted identifier";
        advance ();
        emit (Ident name)
      | c when is_digit c -> read_number start
      | c when is_ident_start c -> emit (Ident (read_while is_ident_char))
      | c -> fail_lex ~start ~token:(String.make 1 c) "unexpected character %C" c);
      loop ()
  in
  loop ();
  List.rev ((Eof, n) :: !tokens)
