(* Statement execution.

   SELECT pipeline: FROM (scans and nested-loop joins) → WHERE →
   grouping/aggregation → HAVING → projection (with sort keys) → DISTINCT →
   ORDER BY → OFFSET/LIMIT.  Rows are materialised lists; the audit-analysis
   workloads PRIMA runs are small enough that pipelining buys nothing over
   clarity here.

   Every operator charges the per-query [Budget.t] at its boundary: scans
   and join outputs as materialised tuples, filters/projections/sort entry
   as work ticks, aggregation-group and DISTINCT-set growth as tuples, and
   the top-level result against the row quota.  In strict mode a fired
   quota raises out of here; in partial mode the [Stop_scan] exception
   breaks the producing loop so the query answers over a prefix of the
   input (the caller reads [Budget.truncated]). *)

type result_set = {
  schema : Schema.t;
  rows : Row.t list;
}

type outcome =
  | Rows of result_set
  | Affected of int
  | Table_created of string
  | Table_dropped of string

(* Raised only in Partial budget mode, to stop a producing loop at the
   point of exhaustion; never escapes this module. *)
exception Stop_scan

module Row_tbl = Hashtbl.Make (struct
  type t = Row.t

  let equal = Row.equal
  let hash = Row.hash
end)

(* Collect the distinct aggregate expressions appearing anywhere in the
   query's output-side expressions. *)
let collect_aggs exprs =
  let acc = ref [] in
  let add agg = if not (List.exists (Sql_ast.equal_expr agg) !acc) then acc := agg :: !acc in
  let rec walk (e : Sql_ast.expr) =
    match e with
    | Sql_ast.Agg _ -> add e
    | Sql_ast.Lit _ | Sql_ast.Col _ | Sql_ast.Star -> ()
    | Sql_ast.Unop (_, x) -> walk x
    | Sql_ast.Binop (_, a, b) -> walk a; walk b
    | Sql_ast.Call (_, args) -> List.iter walk args
    | Sql_ast.In_list { scrutinee; items; _ } -> walk scrutinee; List.iter walk items
    | Sql_ast.In_select { scrutinee; _ } -> walk scrutinee
    | Sql_ast.Exists _ | Sql_ast.Scalar_select _ -> ()
    | Sql_ast.Like { scrutinee; pattern; _ } -> walk scrutinee; walk pattern
    | Sql_ast.Is_null { scrutinee; _ } -> walk scrutinee
    | Sql_ast.Between { scrutinee; low; high; _ } -> walk scrutinee; walk low; walk high
  in
  List.iter walk exprs;
  List.rev !acc

let projection_name i (p : Sql_ast.projection) =
  match p with
  | Sql_ast.All_columns -> Errors.internal "projection_name on *"
  | Sql_ast.Proj (_, Some alias) -> String.lowercase_ascii alias
  | Sql_ast.Proj (Sql_ast.Col { name; _ }, None) -> String.lowercase_ascii name
  | Sql_ast.Proj (e, None) ->
    let text = String.lowercase_ascii (Sql_ast.expr_to_sql e) in
    if String.length text <= 40 then text else Printf.sprintf "col%d" (i + 1)

(* Expand '*' against the input schema and fix output names. *)
let expand_projections input_schema (projections : Sql_ast.projection list) =
  List.concat
    (List.mapi
       (fun i (p : Sql_ast.projection) ->
         match p with
         | Sql_ast.All_columns ->
           List.map
             (fun (c : Schema.column) ->
               ( Sql_ast.Col { qualifier = c.Schema.qualifier; name = c.Schema.name },
                 c.Schema.name ))
             (Schema.columns input_schema)
         | Sql_ast.Proj (e, _) -> [ (e, projection_name i p) ])
       projections)

type sort_key =
  | By_output of int
  | By_expr of Expr.compiled

(* OFFSET/LIMIT stop walking the row list as soon as they can: LIMIT k on a
   large result touches only the first offset+k rows. *)
let rec drop n rows =
  if n <= 0 then rows
  else
    match rows with
    | [] -> []
    | _ :: rest -> drop (n - 1) rest

let take n rows =
  let rec go n acc rows =
    if n <= 0 then List.rev acc
    else
      match rows with
      | [] -> List.rev acc
      | row :: rest -> go (n - 1) (row :: acc) rest
  in
  if n <= 0 then [] else go n [] rows

(* Filter charging one work tick per input row; stops early (Partial) when
   the budget says so. *)
let governed_filter budget pred rows =
  let rec go acc = function
    | [] -> List.rev acc
    | r :: rest ->
      if not (Budget.step budget) then List.rev acc
      else go (if pred r then r :: acc else acc) rest
  in
  go [] rows

(* Map charging one work tick per input row. *)
let governed_map budget f rows =
  let rec go acc = function
    | [] -> List.rev acc
    | r :: rest ->
      if not (Budget.step budget) then List.rev acc else go (f r :: acc) rest
  in
  go [] rows

(* Predicate pushdown for single-table scans: an equality conjunct
   [col = literal] over an indexed column turns the scan into an index
   probe; the remaining conjuncts stay as the residual filter.  The probe
   key is coerced to the column type first — an unsatisfiable comparison
   (wrong type, fractional value on an INTEGER column, NULL) yields no
   rows, exactly as the filter would. *)
let rec split_conjuncts (e : Sql_ast.expr) =
  match e with
  | Sql_ast.Binop (Sql_ast.And, a, b) -> split_conjuncts a @ split_conjuncts b
  | _ -> [ e ]

let conj_opt = function
  | [] -> None
  | e :: es -> Some (List.fold_left (fun acc x -> Sql_ast.Binop (Sql_ast.And, acc, x)) e es)

let indexed_scan budget table ~qualifier (where : Sql_ast.expr option) =
  let schema = Schema.with_qualifier (Table.schema table) qualifier in
  let fallback () = (schema, Budget.admit_list budget (Table.to_list table), where) in
  match where with
  | None -> fallback ()
  | Some w when Sql_ast.contains_agg w -> fallback ()
  | Some w ->
    let conjuncts = split_conjuncts w in
    let try_conjunct (e : Sql_ast.expr) =
      let probe col_ref v =
        match col_ref with
        | Sql_ast.Col { qualifier = q; name } -> begin
          match Schema.find schema ?qualifier:q name with
          | Ok i -> Option.map (fun idx -> (i, idx, v)) (Table.index_on table ~column:i)
          | Error _ -> None
        end
        | _ -> None
      in
      match e with
      | Sql_ast.Binop (Sql_ast.Eq, c, Sql_ast.Lit v) -> probe c v
      | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Lit v, c) -> probe c v
      | _ -> None
    in
    let rec find_probe before = function
      | [] -> None
      | e :: rest -> begin
        match try_conjunct e with
        | Some probe -> Some (probe, List.rev_append before rest)
        | None -> find_probe (e :: before) rest
      end
    in
    (match find_probe [] conjuncts with
    | None -> fallback ()
    | Some ((column, index, key), residual) ->
      if Value.is_null key then (schema, [], conj_opt residual)
      else begin
        match Value.coerce (Schema.ty_at schema column) key with
        | None -> (schema, [], conj_opt residual)
        | Some key ->
          let rows =
            Budget.admit_list budget (List.map (Table.get table) (Index.lookup index key))
          in
          (schema, rows, conj_opt residual)
      end)

(* Uncorrelated IN (SELECT ...) subqueries are evaluated eagerly and
   replaced by literal lists before compilation; the subquery's first
   column provides the membership set. *)
let rec resolve_subqueries budget db (e : Sql_ast.expr) : Sql_ast.expr =
  let go = resolve_subqueries budget db in
  match e with
  | Sql_ast.Lit _ | Sql_ast.Col _ | Sql_ast.Star -> e
  | Sql_ast.Unop (op, x) -> Sql_ast.Unop (op, go x)
  | Sql_ast.Binop (op, a, b) -> Sql_ast.Binop (op, go a, go b)
  | Sql_ast.Agg { fn; distinct; arg } -> Sql_ast.Agg { fn; distinct; arg = go arg }
  | Sql_ast.Call (f, args) -> Sql_ast.Call (f, List.map go args)
  | Sql_ast.In_list { scrutinee; negated; items } ->
    Sql_ast.In_list { scrutinee = go scrutinee; negated; items = List.map go items }
  | Sql_ast.In_select { scrutinee; negated; select } ->
    let sub = exec_select budget db select in
    if Schema.arity sub.schema <> 1 then
      Errors.fail Errors.Plan "IN subquery must return exactly one column";
    let items = List.map (fun row -> Sql_ast.Lit (Row.get row 0)) sub.rows in
    Sql_ast.In_list { scrutinee = go scrutinee; negated; items }
  | Sql_ast.Exists select ->
    let sub = exec_select budget db select in
    Sql_ast.Lit (Value.Bool (sub.rows <> []))
  | Sql_ast.Scalar_select select ->
    let sub = exec_select budget db select in
    if Schema.arity sub.schema <> 1 then
      Errors.fail Errors.Plan "scalar subquery must return exactly one column";
    (match sub.rows with
    | [] -> Sql_ast.Lit Value.Null
    | [ row ] -> Sql_ast.Lit (Row.get row 0)
    | _ :: _ :: _ -> Errors.fail Errors.Execute "scalar subquery returned more than one row")
  | Sql_ast.Like { scrutinee; negated; pattern } ->
    Sql_ast.Like { scrutinee = go scrutinee; negated; pattern = go pattern }
  | Sql_ast.Is_null { scrutinee; negated } -> Sql_ast.Is_null { scrutinee = go scrutinee; negated }
  | Sql_ast.Between { scrutinee; negated; low; high } ->
    Sql_ast.Between { scrutinee = go scrutinee; negated; low = go low; high = go high }

and eval_from budget db (from_ref : Sql_ast.table_ref) : Schema.t * Row.t list =
  match from_ref with
  | Sql_ast.Table { name; alias } ->
    let table = Database.table db name in
    let qualifier = Option.value alias ~default:(Table.name table) in
    ( Schema.with_qualifier (Table.schema table) qualifier,
      Budget.admit_list budget (Table.to_list table) )
  | Sql_ast.Derived { select; alias } ->
    (* A derived table: materialise the subquery and bring its columns into
       scope under the alias. *)
    let sub = exec_select budget db select in
    ( Schema.with_qualifier sub.schema (String.lowercase_ascii alias),
      Budget.admit_list budget sub.rows )
  | Sql_ast.Join { left; right; kind; on } ->
    let left_schema, left_rows = eval_from budget db left in
    let right_schema, right_rows = eval_from budget db right in
    let schema = Schema.concat left_schema right_schema in
    let on_pred =
      match on with
      | Some e ->
        let c = Expr.compile (Expr.scalar_ctx schema) e in
        fun row -> Expr.is_true (c row [||])
      | None -> fun _ -> true
    in
    (* Nested loops, a tick per pair considered and a tuple per row
       produced; [Stop_scan] truncates the output in partial mode. *)
    let acc = ref [] in
    (try
       match kind with
       | Sql_ast.Inner | Sql_ast.Cross ->
         List.iter
           (fun lrow ->
             List.iter
               (fun rrow ->
                 if not (Budget.step budget) then raise_notrace Stop_scan;
                 let row = Row.concat lrow rrow in
                 if on_pred row then begin
                   if not (Budget.admit budget) then raise_notrace Stop_scan;
                   acc := row :: !acc
                 end)
               right_rows)
           left_rows
       | Sql_ast.Left ->
         let null_right = Array.make (Schema.arity right_schema) Value.Null in
         List.iter
           (fun lrow ->
             let matched = ref false in
             List.iter
               (fun rrow ->
                 if not (Budget.step budget) then raise_notrace Stop_scan;
                 let row = Row.concat lrow rrow in
                 if on_pred row then begin
                   if not (Budget.admit budget) then raise_notrace Stop_scan;
                   matched := true;
                   acc := row :: !acc
                 end)
               right_rows;
             if not !matched then begin
               if not (Budget.admit budget) then raise_notrace Stop_scan;
               acc := Row.concat lrow null_right :: !acc
             end)
           left_rows
     with Stop_scan -> ());
    (schema, List.rev !acc)

and exec_select budget db (q : Sql_ast.select) : result_set =
  let resolve = resolve_subqueries budget db in
  let q =
    { q with
      Sql_ast.projections =
        List.map
          (function
            | Sql_ast.All_columns -> Sql_ast.All_columns
            | Sql_ast.Proj (e, alias) -> Sql_ast.Proj (resolve e, alias))
          q.Sql_ast.projections;
      Sql_ast.where = Option.map resolve q.Sql_ast.where;
      Sql_ast.group_by = List.map resolve q.Sql_ast.group_by;
      Sql_ast.having = Option.map resolve q.Sql_ast.having;
      Sql_ast.order_by = List.map (fun (e, d) -> (resolve e, d)) q.Sql_ast.order_by;
    }
  in
  let input_schema, input_rows, residual_where =
    match q.from with
    | Some (Sql_ast.Table { name; alias }) ->
      let table = Database.table db name in
      let qualifier = Option.value alias ~default:(Table.name table) in
      indexed_scan budget table ~qualifier q.where
    | Some f ->
      let schema, rows = eval_from budget db f in
      (schema, rows, q.where)
    | None -> (Schema.of_list [], [ [||] ], q.where)
  in
  (* WHERE: aggregates are illegal there, so compile scalar. *)
  let filtered =
    match residual_where with
    | None -> input_rows
    | Some e ->
      if Sql_ast.contains_agg e then
        Errors.fail Errors.Plan "aggregates are not allowed in WHERE";
      let c = Expr.compile (Expr.scalar_ctx input_schema) e in
      governed_filter budget (fun row -> Expr.is_true (c row [||])) input_rows
  in
  let filtered =
    (* The original WHERE may carry an aggregate even when an index probe
       consumed the only residual conjunct; reject it uniformly. *)
    match q.where with
    | Some e when Sql_ast.contains_agg e ->
      Errors.fail Errors.Plan "aggregates are not allowed in WHERE"
    | Some _ | None -> filtered
  in
  let projections = expand_projections input_schema q.projections in
  let output_exprs = List.map fst projections in
  let output_names = List.map snd projections in
  let having_exprs = Option.to_list q.having in
  let order_exprs = List.map fst q.order_by in
  let agg_list = collect_aggs (output_exprs @ having_exprs @ order_exprs) in
  let grouped = q.group_by <> [] || agg_list <> [] in
  let ctx = { Expr.schema = input_schema; agg_exprs = Array.of_list agg_list } in
  (* Rows entering projection: (representative input row, aggregate segment). *)
  let projection_inputs =
    if not grouped then List.map (fun row -> (row, [||])) filtered
    else begin
      let key_fns =
        List.map (fun e -> Expr.compile (Expr.scalar_ctx input_schema) e) q.group_by
      in
      let make_accs () =
        List.map
          (fun agg ->
            match agg with
            | Sql_ast.Agg { fn; distinct; arg } ->
              let counts_star = arg = Sql_ast.Star in
              let extract =
                if counts_star then fun _ -> Value.Null
                else begin
                  let c = Expr.compile (Expr.scalar_ctx input_schema) arg in
                  fun row -> c row [||]
                end
              in
              (Aggregate.create ~budget fn ~distinct ~counts_star, extract)
            | _ -> Errors.internal "non-aggregate in aggregate list")
          agg_list
      in
      let groups : (Row.t * (Aggregate.t * (Row.t -> Value.t)) list) Row_tbl.t =
        Row_tbl.create 64
      in
      let order = ref [] in
      (* A tick per input row; hash-table growth (a new group) is a
         materialised tuple. *)
      (try
         List.iter
           (fun row ->
             if not (Budget.step budget) then raise_notrace Stop_scan;
             let key = Array.of_list (List.map (fun f -> f row [||]) key_fns) in
             let accs =
               match Row_tbl.find_opt groups key with
               | Some (_, accs) -> accs
               | None ->
                 if not (Budget.admit budget) then raise_notrace Stop_scan;
                 let accs = make_accs () in
                 Row_tbl.add groups key (row, accs);
                 order := key :: !order;
                 accs
             in
             List.iter (fun (acc, extract) -> Aggregate.step acc (extract row)) accs)
           filtered
       with Stop_scan -> ());
      let keys = List.rev !order in
      let keys =
        (* Global aggregate over an empty input still yields one group. *)
        if keys = [] && q.group_by = [] then begin
          let arity = Schema.arity input_schema in
          let rep = Array.make arity Value.Null in
          Row_tbl.add groups [||] (rep, make_accs ());
          [ [||] ]
        end
        else keys
      in
      List.map
        (fun key ->
          let rep, accs = Row_tbl.find groups key in
          (rep, Array.of_list (List.map (fun (acc, _) -> Aggregate.final acc) accs)))
        keys
    end
  in
  (* HAVING *)
  let projection_inputs =
    match q.having with
    | None -> projection_inputs
    | Some e ->
      let c = Expr.compile ctx e in
      governed_filter budget (fun (row, aggs) -> Expr.is_true (c row aggs)) projection_inputs
  in
  (* Projection + sort keys. *)
  let compiled_outputs = List.map (Expr.compile ctx) output_exprs in
  let sort_specs =
    List.map
      (fun ((e : Sql_ast.expr), dir) ->
        let spec =
          match e with
          | Sql_ast.Col { qualifier = None; name } ->
            let lname = String.lowercase_ascii name in
            (match List.find_index (String.equal lname) output_names with
            | Some i -> By_output i
            | None -> By_expr (Expr.compile ctx e))
          | Sql_ast.Lit (Value.Int k) when k >= 1 && k <= List.length output_names ->
            By_output (k - 1)
          | _ -> By_expr (Expr.compile ctx e)
        in
        (spec, dir))
      q.order_by
  in
  let produced =
    governed_map budget
      (fun (row, aggs) ->
        let out = Array.of_list (List.map (fun c -> c row aggs) compiled_outputs) in
        let keys =
          List.map
            (fun (spec, dir) ->
              let v = match spec with By_output i -> out.(i) | By_expr c -> c row aggs in
              (v, dir))
            sort_specs
        in
        (out, keys))
      projection_inputs
  in
  let produced =
    if not q.distinct then produced
    else begin
      let seen = Row_tbl.create 64 in
      governed_filter budget
        (fun (out, _) ->
          if Row_tbl.mem seen out then false
          else begin
            Row_tbl.add seen out ();
            true
          end)
        produced
    end
  in
  let produced =
    if sort_specs = [] then produced
    else begin
      (* A tick per row entering the sort. *)
      let produced = governed_filter budget (fun _ -> true) produced in
      let cmp (_, ka) (_, kb) =
        let rec go a b =
          match a, b with
          | [], [] -> 0
          | (va, dir) :: ra, (vb, _) :: rb ->
            let c = Value.compare va vb in
            let c = match dir with Sql_ast.Asc -> c | Sql_ast.Desc -> -c in
            if c <> 0 then c else go ra rb
          | _ -> 0
        in
        go ka kb
      in
      List.stable_sort cmp produced
    end
  in
  let rows = List.map fst produced in
  let rows =
    match q.offset with
    | Some n when n > 0 -> drop n rows
    | Some _ | None -> rows
  in
  let rows =
    match q.limit with
    | Some n -> take n rows
    | None -> rows
  in
  let out_schema =
    Schema.of_list
      (List.map2
         (fun e name -> Schema.column name (Expr.infer_type input_schema e))
         output_exprs output_names)
  in
  { schema = out_schema; rows }

let eval_const_expr (e : Sql_ast.expr) =
  let c = Expr.compile (Expr.scalar_ctx (Schema.of_list [])) e in
  c [||] [||]

let exec_insert budget db ~table ~columns ~rows =
  let t = Database.table db table in
  let schema = Table.schema t in
  let arrange =
    match columns with
    | None ->
      fun values ->
        if List.length values <> Schema.arity schema then
          Errors.fail Errors.Execute "INSERT into %s: expected %d values, got %d" table
            (Schema.arity schema) (List.length values);
        Array.of_list values
    | Some names ->
      let indices = List.map (fun n -> Schema.find_exn schema n) names in
      fun values ->
        if List.length values <> List.length indices then
          Errors.fail Errors.Execute "INSERT into %s: expected %d values, got %d" table
            (List.length indices) (List.length values);
        let row = Array.make (Schema.arity schema) Value.Null in
        List.iter2 (fun i v -> row.(i) <- v) indices values;
        row
  in
  (* Mutations are never truncated: a tick per row (strict budgets can
     still deadline or cancel), but partial mode inserts everything. *)
  List.iter
    (fun exprs ->
      ignore (Budget.step budget);
      Table.insert t (arrange (List.map eval_const_expr exprs)))
    rows;
  List.length rows

let compile_table_pred budget t where =
  let schema = Schema.with_qualifier (Table.schema t) (Table.name t) in
  match where with
  | None ->
    fun _ ->
      ignore (Budget.step budget);
      true
  | Some e ->
    let c = Expr.compile (Expr.scalar_ctx schema) e in
    fun row ->
      ignore (Budget.step budget);
      Expr.is_true (c row [||])

(* UNION: branches must agree in arity; the first branch names the output.
   Plain UNION deduplicates the combined rows; UNION ALL concatenates. *)
let exec_compound budget db (c : Sql_ast.compound) : result_set =
  let first = exec_select budget db c.Sql_ast.first in
  (* Accumulate branches in reverse and flip once at the end: appending with
     [@] re-copies the accumulator per branch, going quadratic in both the
     branch count and the row count. *)
  let rev_combined, needs_dedup =
    List.fold_left
      (fun (acc, dedup) (all, select) ->
        let branch = exec_select budget db select in
        if Schema.arity branch.schema <> Schema.arity first.schema then
          Errors.fail Errors.Plan "UNION branches must have the same number of columns";
        (List.rev_append branch.rows acc, dedup || not all))
      (List.rev first.rows, false) c.Sql_ast.rest
  in
  let combined = List.rev rev_combined in
  let rows =
    if not needs_dedup then combined
    else begin
      let seen = Row_tbl.create 64 in
      governed_filter budget
        (fun row ->
          if Row_tbl.mem seen row then false
          else begin
            Row_tbl.add seen row ();
            true
          end)
        combined
    end
  in
  { schema = first.schema; rows }

let exec_stmt_b budget db (stmt : Sql_ast.stmt) : outcome =
  match stmt with
  | Sql_ast.Select q ->
    let rs = exec_select budget db q in
    Rows { rs with rows = Budget.charge_rows budget rs.rows }
  | Sql_ast.Compound c ->
    let rs = exec_compound budget db c in
    Rows { rs with rows = Budget.charge_rows budget rs.rows }
  | Sql_ast.Create_table { name; columns } ->
    let schema = Schema.of_list (List.map (fun (n, ty) -> Schema.column n ty) columns) in
    let _ = Database.create_table db ~name ~schema in
    Table_created name
  | Sql_ast.Drop_table name ->
    Database.drop_table db name;
    Table_dropped name
  | Sql_ast.Insert { table; columns; rows } ->
    Affected (exec_insert budget db ~table ~columns ~rows)
  | Sql_ast.Delete { table; where } ->
    let t = Database.table db table in
    let pred = compile_table_pred budget t where in
    Affected (Table.delete_where t (fun row -> not (pred row)))
  | Sql_ast.Update { table; assignments; where } ->
    let t = Database.table db table in
    let schema = Schema.with_qualifier (Table.schema t) (Table.name t) in
    let pred = compile_table_pred budget t where in
    let compiled =
      List.map
        (fun (name, e) ->
          (Schema.find_exn schema name, Expr.compile (Expr.scalar_ctx schema) e))
        assignments
    in
    let transform row =
      let row' = Array.copy row in
      List.iter (fun (i, c) -> row'.(i) <- c row [||]) compiled;
      row'
    in
    Affected (Table.update_where t ~pred ~transform)

(* Public entry points: an omitted budget is a fresh unlimited strict one —
   the ungoverned path pays only the counter increments. *)
let or_default = function Some b -> b | None -> Budget.default ()

let resolve_subqueries ?budget db e = resolve_subqueries (or_default budget) db e

let exec_select ?budget db q = exec_select (or_default budget) db q

let exec_compound ?budget db c = exec_compound (or_default budget) db c

let exec_stmt ?budget db stmt = exec_stmt_b (or_default budget) db stmt
