(* A privacy policy vocabulary V: one taxonomy per policy attribute.  The
   vocabulary is what makes grounding (Definition 3) well defined.

   Grounding is the inner loop of ComputeCoverage and Prune, so the two
   per-value queries it keeps answering — [ground_set] and [is_ground] —
   are memoized in per-vocabulary hashtables keyed by (attr, value).
   Vocabulary values are immutable: [add] returns a *new* vocabulary with
   fresh (empty) caches and a fresh [stamp], so a mutation can never serve
   stale cache entries.  The [stamp] uniquely identifies a vocabulary value
   for the lifetime of the process and lets downstream caches (the rule
   grounding cache in [Prima_core.Rule]) key their entries by vocabulary
   without retaining it. *)

module String_map = Map.Make (String)

type t = {
  stamp : int;
  taxonomies : Taxonomy.t String_map.t;
  ground_sets : (string * string, string list) Hashtbl.t;
  ground_flags : (string * string, bool) Hashtbl.t;
}

exception Unknown_attribute of string
exception Duplicate_attribute of string

let next_stamp =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let of_map taxonomies =
  { stamp = next_stamp ();
    taxonomies;
    ground_sets = Hashtbl.create 256;
    ground_flags = Hashtbl.create 256;
  }

let empty = of_map String_map.empty

let stamp t = t.stamp

let add t taxonomy =
  let attr = Taxonomy.attr taxonomy in
  if String_map.mem attr t.taxonomies then raise (Duplicate_attribute attr)
  else of_map (String_map.add attr taxonomy t.taxonomies)

let of_taxonomies taxonomies = List.fold_left add empty taxonomies

(* Grow one taxonomy leaf, functionally: the result is a fresh vocabulary
   value with empty caches and a fresh stamp, so every downstream cache
   keyed by the old stamp goes cold atomically when a caller adopts it. *)
let with_leaf t ~attr ~parent ~value =
  match String_map.find_opt attr t.taxonomies with
  | None -> raise (Unknown_attribute attr)
  | Some tax ->
    of_map (String_map.add attr (Taxonomy.with_leaf tax ~parent ~value) t.taxonomies)

let attributes t = List.map fst (String_map.bindings t.taxonomies)

let mem_attribute t attr = String_map.mem attr t.taxonomies

let taxonomy t attr =
  match String_map.find_opt attr t.taxonomies with
  | Some tax -> tax
  | None -> raise (Unknown_attribute attr)

let taxonomy_opt t attr = String_map.find_opt attr t.taxonomies

let mem_value t ~attr ~value =
  match String_map.find_opt attr t.taxonomies with
  | Some tax -> Taxonomy.mem tax value
  | None -> false

(* Grounding treats values of attributes outside the vocabulary (e.g. the
   audit log's user names and timestamps) as already ground: the vocabulary
   cannot refine what it does not describe. *)
(* The memo-free paths are exposed for the differential-testing oracle and
   benchmark baselines: they recompute the taxonomy walk per call, exactly
   as the seed did. *)
let is_ground_uncached t ~attr ~value =
  match String_map.find_opt attr t.taxonomies with
  | Some tax -> if Taxonomy.mem tax value then Taxonomy.is_ground tax value else true
  | None -> true

let is_ground t ~attr ~value =
  let key = (attr, value) in
  match Hashtbl.find_opt t.ground_flags key with
  | Some flag -> flag
  | None ->
    let flag = is_ground_uncached t ~attr ~value in
    Hashtbl.add t.ground_flags key flag;
    flag

let ground_set_uncached t ~attr ~value =
  match String_map.find_opt attr t.taxonomies with
  | Some tax when Taxonomy.mem tax value -> Taxonomy.leaves_under tax value
  | Some _ | None -> [ value ]

let ground_set t ~attr ~value =
  let key = (attr, value) in
  match Hashtbl.find_opt t.ground_sets key with
  | Some values -> values
  | None ->
    let values = ground_set_uncached t ~attr ~value in
    Hashtbl.add t.ground_sets key values;
    values

let equivalent_values t ~attr v1 v2 =
  match String_map.find_opt attr t.taxonomies with
  | Some tax when Taxonomy.mem tax v1 && Taxonomy.mem tax v2 ->
    Taxonomy.equivalent tax v1 v2
  | Some _ | None -> String.equal v1 v2

let subsumes_value t ~attr ~ancestor ~descendant =
  match String_map.find_opt attr t.taxonomies with
  | Some tax when Taxonomy.mem tax ancestor && Taxonomy.mem tax descendant ->
    Taxonomy.subsumes tax ~ancestor ~descendant
  | Some _ | None -> String.equal ancestor descendant

let cardinality t =
  String_map.fold (fun _ tax acc -> acc + Taxonomy.size tax) t.taxonomies 0

let pp ppf t =
  String_map.iter (fun _ tax -> Taxonomy.pp ppf tax) t.taxonomies
