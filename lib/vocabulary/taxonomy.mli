(** Value hierarchy for one policy attribute.

    A taxonomy captures one tree of the privacy policy vocabulary (Figure 1 of
    the paper): the "data" tree, the "purpose" tree, etc.  Interior nodes are
    composite values that can be refined; leaves are ground values
    (Definition 2). *)

type node
(** A tree node carrying a value and its sub-values. *)

type t
(** A taxonomy: an attribute name plus its value tree. *)

exception Duplicate_value of string
(** Raised by {!create} when the same value appears twice in one tree. *)

exception Unknown_value of string
(** Raised by lookups when the value is not part of the taxonomy. *)

val node : string -> node list -> node
(** [node value children] builds an interior (or leaf, if [children] is empty)
    node. *)

val leaf : string -> node
(** [leaf value] is [node value []]. *)

val create : attr:string -> node -> t
(** [create ~attr root] validates value uniqueness and builds the taxonomy.
    @raise Duplicate_value if a value occurs twice. *)

val with_leaf : t -> parent:string -> value:string -> t
(** A fresh taxonomy equal to [t] with one new ground value appended under
    [parent] — the functional "the vocabulary grew mid-run" edit.
    @raise Unknown_value when [parent] is absent.
    @raise Duplicate_value when [value] is already in the tree. *)

val attr : t -> string
(** The attribute this taxonomy describes, e.g. ["data"]. *)

val root_value : t -> string
(** Value at the root of the tree. *)

val mem : t -> string -> bool
(** Membership test for a value. *)

val is_ground : t -> string -> bool
(** [is_ground t v] is true iff [v] is a leaf, i.e. atomic w.r.t. the
    vocabulary (Definition 2).  @raise Unknown_value on foreign values. *)

val children : t -> string -> string list
(** Immediate sub-values of a value. *)

val leaves_under : t -> string -> string list
(** Ground set of a value: all leaves in its subtree, in tree order.  A leaf
    grounds to the singleton containing itself. *)

val subsumes : t -> ancestor:string -> descendant:string -> bool
(** Reflexive subtree containment. *)

val equivalent : t -> string -> string -> bool
(** Definition 4 restricted to one attribute: ground sets intersect. *)

val all_values : t -> string list
(** Every value in the tree, preorder. *)

val ground_values : t -> string list
(** Every leaf value, in tree order. *)

val size : t -> int
(** Number of values in the tree. *)

val depth : t -> int
(** Height of the tree (a single leaf has depth 1). *)

val parent : t -> string -> string option
(** Parent value, or [None] for the root. *)

val path_to : t -> string -> string list
(** Root-to-value path, both ends included. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering of the tree, as in Figure 1. *)
