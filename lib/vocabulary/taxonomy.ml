(* A taxonomy is the value hierarchy of a single policy attribute (e.g. the
   "data" tree of Figure 1 in the paper).  Interior nodes are composite
   values; leaves are ground values.  Node values are unique within one
   taxonomy so that a value alone identifies its node. *)

type node = {
  value : string;
  children : node list;
}

type t = {
  attr : string;
  root : node;
  by_value : (string, node) Hashtbl.t;
}

exception Duplicate_value of string
exception Unknown_value of string

let node value children = { value; children }

let leaf value = node value []

let rec iter_nodes f n =
  f n;
  List.iter (iter_nodes f) n.children

let create ~attr root =
  let by_value = Hashtbl.create 64 in
  let add n =
    if Hashtbl.mem by_value n.value then raise (Duplicate_value n.value)
    else Hashtbl.add by_value n.value n
  in
  iter_nodes add root;
  { attr; root; by_value }

let attr t = t.attr

let root_value t = t.root.value

(* Grow one leaf under an existing value, functionally: rebuild the tree
   with the new leaf appended to the parent's children and revalidate.
   The original taxonomy is untouched — callers adopting the result get a
   structurally fresh tree (and, via Vocab, a fresh stamp). *)
let with_leaf t ~parent ~value =
  if not (Hashtbl.mem t.by_value parent) then raise (Unknown_value parent);
  let rec rebuild n =
    let children = List.map rebuild n.children in
    let children = if String.equal n.value parent then children @ [ leaf value ] else children in
    node n.value children
  in
  create ~attr:t.attr (rebuild t.root)

let mem t value = Hashtbl.mem t.by_value value

let find_node t value =
  match Hashtbl.find_opt t.by_value value with
  | Some n -> n
  | None -> raise (Unknown_value value)

let is_ground t value = (find_node t value).children = []

let children t value =
  List.map (fun n -> n.value) (find_node t value).children

(* Ground set of a value: the set RT' of Definition 2 — every leaf reachable
   from the value's node.  A leaf grounds to itself. *)
let leaves_under t value =
  let rec collect acc n =
    match n.children with
    | [] -> n.value :: acc
    | cs -> List.fold_left collect acc cs
  in
  List.rev (collect [] (find_node t value))

(* [subsumes t ~ancestor ~descendant] holds when [descendant] lies in the
   subtree rooted at [ancestor] (reflexively). *)
let subsumes t ~ancestor ~descendant =
  if not (mem t descendant) then raise (Unknown_value descendant);
  let rec search n =
    n.value = descendant || List.exists search n.children
  in
  search (find_node t ancestor)

(* Two values are equivalent in the sense of Definition 4 when their ground
   sets intersect; in a tree that is exactly an ancestor/descendant
   relationship in either direction. *)
let equivalent t v1 v2 =
  subsumes t ~ancestor:v1 ~descendant:v2
  || subsumes t ~ancestor:v2 ~descendant:v1

let all_values t =
  let acc = ref [] in
  iter_nodes (fun n -> acc := n.value :: !acc) t.root;
  List.rev !acc

let ground_values t =
  let acc = ref [] in
  iter_nodes (fun n -> if n.children = [] then acc := n.value :: !acc) t.root;
  List.rev !acc

let size t = Hashtbl.length t.by_value

let depth t =
  let rec go n = 1 + List.fold_left (fun m c -> max m (go c)) 0 n.children in
  go t.root

let parent t value =
  if not (mem t value) then raise (Unknown_value value);
  let result = ref None in
  iter_nodes
    (fun n -> if List.exists (fun c -> c.value = value) n.children then result := Some n.value)
    t.root;
  !result

(* Path from the root down to [value], inclusive on both ends. *)
let path_to t value =
  if not (mem t value) then raise (Unknown_value value);
  let rec go trail n =
    if n.value = value then Some (List.rev (n.value :: trail))
    else
      List.fold_left
        (fun found c -> match found with Some _ -> found | None -> go (n.value :: trail) c)
        None n.children
  in
  match go [] t.root with
  | Some p -> p
  | None -> raise (Unknown_value value)

let pp ppf t =
  let rec pp_node indent ppf n =
    Fmt.pf ppf "%s%s%s@." indent n.value (if n.children = [] then "" else ":");
    List.iter (pp_node (indent ^ "  ") ppf) n.children
  in
  Fmt.pf ppf "[%s]@." t.attr;
  pp_node "" ppf t.root
