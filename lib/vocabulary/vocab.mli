(** Privacy policy vocabulary: the set of attribute taxonomies against which
    policies are grounded and compared (the [V] of Algorithms 1–6).

    Attributes that are not described by the vocabulary — the audit log's
    [user], [time], [op] and [status] fields — are treated as flat domains:
    every value is its own ground set and equivalence is string equality.

    {!ground_set} and {!is_ground} are memoized per [(attr, value)].
    Vocabulary values are immutable — {!add} returns a fresh vocabulary with
    empty caches and a fresh {!stamp} — so cached answers can never go
    stale. *)

type t

exception Unknown_attribute of string
exception Duplicate_attribute of string

val empty : t

val stamp : t -> int
(** Process-unique identity of this vocabulary value.  Every construction
    ({!empty}, {!add}, {!of_taxonomies}) yields a fresh stamp; downstream
    caches key memoized grounding results by it. *)

val add : t -> Taxonomy.t -> t
(** @raise Duplicate_attribute when the taxonomy's attribute is present. *)

val of_taxonomies : Taxonomy.t list -> t

val with_leaf : t -> attr:string -> parent:string -> value:string -> t
(** A fresh vocabulary equal to [t] with one new ground value under
    [parent] in [attr]'s taxonomy ({!Taxonomy.with_leaf}) — empty caches,
    fresh {!stamp}, so downstream grounding caches keyed by the old stamp
    go cold atomically when the result is adopted.
    @raise Unknown_attribute when [attr] is absent.
    @raise Taxonomy.Unknown_value / [Taxonomy.Duplicate_value] as
    {!Taxonomy.with_leaf}. *)

val attributes : t -> string list
(** Attribute names, sorted. *)

val mem_attribute : t -> string -> bool

val taxonomy : t -> string -> Taxonomy.t
(** @raise Unknown_attribute when absent. *)

val taxonomy_opt : t -> string -> Taxonomy.t option

val mem_value : t -> attr:string -> value:string -> bool
(** Whether the vocabulary explicitly describes [value] for [attr]. *)

val is_ground : t -> attr:string -> value:string -> bool
(** Definition 2 lifted to the vocabulary; values of attributes (or values)
    outside the vocabulary are ground by convention. *)

val ground_set : t -> attr:string -> value:string -> string list
(** The set [RT'] of Definition 2 for one attribute value.  Memoized. *)

val is_ground_uncached : t -> attr:string -> value:string -> bool
val ground_set_uncached : t -> attr:string -> value:string -> string list
(** Memo-free variants that re-walk the taxonomy per call — the seed's
    behaviour, kept for the differential-testing oracle
    ([Prima_core.Range_reference]) and benchmark baselines. *)

val equivalent_values : t -> attr:string -> string -> string -> bool
(** Definition 4 for one attribute: ground sets intersect. *)

val subsumes_value : t -> attr:string -> ancestor:string -> descendant:string -> bool

val cardinality : t -> int
(** Total number of vocabulary values across all taxonomies. *)

val pp : Format.formatter -> t -> unit
