(* The health report a fault-aware consolidation returns alongside its
   merged entries.  Accounting invariant: every input record known to the
   federation is exactly one of delivered, quarantined, or at a skipped
   site — delivered + quarantined + skipped_entries = total — and the
   completeness fraction is delivered / total.  Downstream, coverage over a
   partial trail is labelled a lower bound carrying this fraction. *)

type skip_reason =
  | Breaker_open
  | Fetch_failed of string (* retries exhausted; the last failure *)

type site_status =
  | Delivered of { retries : int } (* fetched, possibly after retries *)
  | Skipped of skip_reason

type site_health = {
  site : string;
  status : site_status;
  entries : int; (* entries this site contributed to the merge *)
  quarantined : int; (* ingest-quarantined + corrupted-in-transit *)
  skipped_entries : int; (* entries stranded when the site was skipped *)
  breaker : Breaker.state;
  trips : int; (* lifetime breaker trips for this site *)
}

type t = {
  sites : site_health list;
  delivered : int;
  quarantined : int;
  skipped_entries : int;
  total : int;
  completeness : float; (* delivered / total; 1.0 on an empty federation *)
}

let site_ok s = match s.status with Delivered _ -> true | Skipped _ -> false

let of_sites (sites : site_health list) =
  let sum f = List.fold_left (fun acc (s : site_health) -> acc + f s) 0 sites in
  let delivered = sum (fun s -> s.entries) in
  let quarantined = sum (fun s -> s.quarantined) in
  let skipped_entries = sum (fun s -> s.skipped_entries) in
  let total = delivered + quarantined + skipped_entries in
  { sites;
    delivered;
    quarantined;
    skipped_entries;
    total;
    completeness = (if total = 0 then 1.0 else float_of_int delivered /. float_of_int total);
  }

let complete t = t.completeness >= 1.0

let skipped_sites t = List.filter (fun s -> not (site_ok s)) t.sites

let skip_reason_to_string = function
  | Breaker_open -> "breaker open"
  | Fetch_failed why -> Printf.sprintf "fetch failed (%s)" why

let pp_status ppf = function
  | Delivered { retries = 0 } -> Fmt.string ppf "ok"
  | Delivered { retries } -> Fmt.pf ppf "ok after %d retr%s" retries (if retries = 1 then "y" else "ies")
  | Skipped reason -> Fmt.string ppf (skip_reason_to_string reason)

let pp_site ppf s =
  Fmt.pf ppf "%-16s %-24s entries=%d quarantined=%d stranded=%d breaker=%a trips=%d"
    s.site
    (Fmt.str "%a" pp_status s.status)
    s.entries s.quarantined s.skipped_entries Breaker.pp_state s.breaker s.trips

let pp ppf t =
  Fmt.pf ppf "federation health: %d/%d records delivered (completeness %.1f%%)@."
    t.delivered t.total (100. *. t.completeness);
  Fmt.pf ppf "  delivered=%d quarantined=%d stranded-at-skipped-sites=%d@." t.delivered
    t.quarantined t.skipped_entries;
  List.iter (fun s -> Fmt.pf ppf "  %a@." pp_site s) t.sites
