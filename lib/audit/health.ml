(* The health report a fault-aware consolidation returns alongside its
   merged entries.  Accounting invariant: every input record known to the
   federation is exactly one of delivered, quarantined, or at a skipped
   site — delivered + quarantined + skipped_entries = total — and the
   completeness fraction is delivered / total.  Downstream, coverage over a
   partial trail is labelled a lower bound carrying this fraction.

   A site served from the durable archive while its live fetch failed is
   [Stale]: its archived records count as delivered, the lag (records the
   live store holds beyond the archive) as stranded — so completeness
   still measures exactly what the merge contains.  Per-site durability
   (shard health, site-WAL recovery) rides along so consolidation can
   keep coverage at a lower bound while any site is durably degraded even
   when the record accounting looks complete — a degraded site's own
   totals are not trustworthy. *)

type skip_reason =
  | Breaker_open
  | Fetch_failed of string (* retries exhausted; the last failure *)

type site_status =
  | Delivered of { retries : int } (* fetched, possibly after retries *)
  | Stale of { archived : int; lag : int } (* served from the archive *)
  | Skipped of skip_reason

type site_health = {
  site : string;
  status : site_status;
  entries : int; (* entries this site contributed to the merge *)
  quarantined : int; (* ingest-quarantined + corrupted-in-transit *)
  skipped_entries : int; (* entries stranded when the site was skipped *)
  breaker : Breaker.state;
  trips : int; (* lifetime breaker trips for this site *)
  shards : int; (* archive shards held for this site *)
  shards_degraded : int; (* of which torn or tampered *)
  site_degraded : bool; (* site WAL recovery lossy/tampered, replay pending *)
}

let make ?(shards = 0) ?(shards_degraded = 0) ?(site_degraded = false) ~site ~status
    ~entries ~quarantined ~skipped_entries ~breaker ~trips () =
  { site;
    status;
    entries;
    quarantined;
    skipped_entries;
    breaker;
    trips;
    shards;
    shards_degraded;
    site_degraded;
  }

(* Admission accounting for one budget class: how many requests the
   class had strictly admitted, browned out to Partial execution, or
   shed outright since counters were last reset. *)
type class_health = {
  cls : string;
  weight : int;
  admitted : int;
  brownouts : int;
  shed : int;
}

type t = {
  sites : site_health list;
  classes : class_health list; (* per-budget-class admission rows; [] when unattached *)
  delivered : int;
  quarantined : int;
  skipped_entries : int;
  total : int;
  completeness : float; (* delivered / total; 1.0 on an empty federation *)
  degraded_sites : int; (* sites whose durable state is not trustworthy *)
  degraded_shards : int; (* torn or tampered archive shards, all sites *)
}

let site_ok s =
  match s.status with Delivered _ | Stale _ -> true | Skipped _ -> false

(* A site whose durable substrate is damaged: its own record counts are
   not a trustworthy total, whatever its fetch status. *)
let site_durably_degraded s = s.site_degraded || s.shards_degraded > 0

(* A site that expects nothing is vacuously complete: guard the division
   so an empty site reports 1.0 instead of NaN. *)
let site_completeness (s : site_health) =
  let expected = s.entries + s.quarantined + s.skipped_entries in
  if expected = 0 then 1.0 else float_of_int s.entries /. float_of_int expected

let of_sites ?(classes = []) (sites : site_health list) =
  let sum f = List.fold_left (fun acc (s : site_health) -> acc + f s) 0 sites in
  let delivered = sum (fun s -> s.entries) in
  let quarantined = sum (fun s -> s.quarantined) in
  let skipped_entries = sum (fun s -> s.skipped_entries) in
  let total = delivered + quarantined + skipped_entries in
  { sites;
    classes;
    delivered;
    quarantined;
    skipped_entries;
    total;
    completeness = (if total = 0 then 1.0 else float_of_int delivered /. float_of_int total);
    degraded_sites =
      List.length (List.filter site_durably_degraded sites);
    degraded_shards = sum (fun s -> s.shards_degraded);
  }

let complete t = t.completeness >= 1.0

let durably_degraded t = t.degraded_sites > 0

let skipped_sites t = List.filter (fun s -> not (site_ok s)) t.sites

let skip_reason_to_string = function
  | Breaker_open -> "breaker open"
  | Fetch_failed why -> Printf.sprintf "fetch failed (%s)" why

let pp_status ppf = function
  | Delivered { retries = 0 } -> Fmt.string ppf "ok"
  | Delivered { retries } -> Fmt.pf ppf "ok after %d retr%s" retries (if retries = 1 then "y" else "ies")
  | Stale { archived; lag } -> Fmt.pf ppf "stale (%d archived, %d behind)" archived lag
  | Skipped reason -> Fmt.string ppf (skip_reason_to_string reason)

let pp_site ppf s =
  Fmt.pf ppf
    "%-16s %-24s entries=%d quarantined=%d stranded=%d shards=%d/%d%s breaker=%a trips=%d"
    s.site
    (Fmt.str "%a" pp_status s.status)
    s.entries s.quarantined s.skipped_entries
    (s.shards - s.shards_degraded)
    s.shards
    (if s.site_degraded then " DEGRADED" else "")
    Breaker.pp_state s.breaker s.trips

let pp_class ppf c =
  Fmt.pf ppf "%-16s weight=%d admitted=%d brownouts=%d shed=%d" c.cls c.weight c.admitted
    c.brownouts c.shed

let pp ppf t =
  Fmt.pf ppf "federation health: %d/%d records delivered (completeness %.1f%%)@."
    t.delivered t.total (100. *. t.completeness);
  Fmt.pf ppf "  delivered=%d quarantined=%d stranded-at-skipped-sites=%d@." t.delivered
    t.quarantined t.skipped_entries;
  if t.degraded_sites > 0 || t.degraded_shards > 0 then
    Fmt.pf ppf "  durably degraded: %d site(s), %d shard(s)@." t.degraded_sites
      t.degraded_shards;
  List.iter (fun s -> Fmt.pf ppf "  %a@." pp_site s) t.sites;
  if t.classes <> [] then begin
    Fmt.pf ppf "  budget classes:@.";
    List.iter (fun c -> Fmt.pf ppf "    %a@." pp_class c) t.classes
  end
