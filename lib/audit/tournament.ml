(* Tournament (k-way) merge over sorted cursors.

   A complete binary tournament tree of the next power of two ≥ k leaves:
   each internal node holds the index of the cursor that wins its subtree,
   so the overall winner sits at the root and advancing it replays only
   its leaf-to-root path — O(N log k) for N merged records, identical to
   the heap merge it replaces but with a cheaper, branch-predictable inner
   loop and a cursor abstraction shard stores can plug into.

   Ordering is (key, cursor priority): ties across cursors resolve in
   priority (= stream) order, and records within one cursor are emitted in
   cursor order, so the merge is stable and deterministic — the same
   guarantee the consolidated-view QCheck parity test pins against a
   global stable sort. *)

type 'a cursor = {
  mutable rest : 'a list;
  priority : int; (* tie-break rank; lower wins on equal keys *)
}

let cursor ?(priority = 0) rest = { rest; priority }

(* Merge already-sorted cursors into one key-ordered list. *)
let merge_cursors ~(key : 'a -> int) (cursors : 'a cursor list) : 'a list =
  let cursors = Array.of_list cursors in
  let k = Array.length cursors in
  if k = 0 then []
  else begin
    let head_key c = match c.rest with [] -> max_int | x :: _ -> key x in
    (* Does cursor [i] sort strictly before cursor [j]?  Exhausted cursors
       key at max_int and sink to the bottom of the bracket. *)
    let less i j =
      let ki = head_key cursors.(i) and kj = head_key cursors.(j) in
      ki < kj || (ki = kj && cursors.(i).priority < cursors.(j).priority)
    in
    let p = ref 1 in
    while !p < k do p := !p * 2 done;
    let p = !p in
    (* tree.(1) is the root; leaves p .. p+k-1 hold cursor indices, the
       padding leaves hold -1 (an absent contestant that always loses). *)
    let tree = Array.make (2 * p) (-1) in
    let better i j = if i < 0 then j else if j < 0 then i else if less j i then j else i in
    for i = 0 to k - 1 do tree.(p + i) <- i done;
    for node = p - 1 downto 1 do
      tree.(node) <- better tree.(2 * node) tree.((2 * node) + 1)
    done;
    let replay winner =
      let node = ref ((p + winner) / 2) in
      while !node >= 1 do
        tree.(!node) <- better tree.(2 * !node) tree.((2 * !node) + 1);
        node := !node / 2
      done
    in
    let acc = ref [] in
    let running = ref true in
    while !running do
      let w = tree.(1) in
      if w < 0 then running := false
      else
        match cursors.(w).rest with
        | [] -> running := false
        | x :: rest ->
          acc := x :: !acc;
          cursors.(w).rest <- rest;
          replay w
    done;
    List.rev !acc
  end

(* Merge sorted streams; stream order is the tie-break priority. *)
let merge ~key (streams : 'a list list) : 'a list =
  merge_cursors ~key (List.mapi (fun i s -> { rest = s; priority = i }) streams)

(* The audit-entry instantiation used by consolidation: keyed by entry
   timestamp, ties in stream order. *)
let merge_entries (streams : Hdb.Audit_schema.entry list list) :
    Hdb.Audit_schema.entry list =
  merge ~key:(fun e -> e.Hdb.Audit_schema.time) streams
