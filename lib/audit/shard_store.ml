(* The consolidated archive, sharded by (site, time-range) behind a
   checksummed shard manifest.

   Every shard is one {!Durable.Log} holding the wire-encoded entries of
   one site for one time bucket ([bucket_ms] wide); the manifest
   ({!Durable.Manifest}) is rewritten — after the shards are synced — at
   every durability point, cataloguing each shard's record count and
   chain head.  Open-or-recover semantics degrade per shard, never
   whole-store:

   - a readable manifest anchors each shard: fewer recovered records than
     catalogued is data loss ([Torn], the verified prefix still serves);
     a [Tamper_detected] recovery verdict quarantines the shard ([Tampered]
     — its records are excluded from the merge and counted stranded);
   - an unreadable (torn, bit-flipped) manifest is rebuilt by scanning the
     shards themselves, each individually recoverable;
   - a shard device the manifest does not know is adopted (it was created
     after the last manifest write); a catalogued shard with no surviving
     device is reported lost.

   Archiving is per-site and append-only up to a high-water mark: entries
   at or below the newest archived timestamp must already be held, so a
   fetch is split into the already-archived prefix and the fresh suffix.
   If the held records disagree with that prefix — a damaged shard, a
   lost device — the site's shards are rebuilt wholesale from the fetch:
   a clean fetch supersedes a damaged archive.  Per-site streams are
   assumed time-sorted (the consolidation path sorts defensively).

   Consolidation reads the archive through {!Tournament} cursors, one per
   shard, site-major in bucket order — within a site equal timestamps
   share a bucket, so the merge's (time, cursor-priority) order equals
   the federation's (time, site-index) order. *)

type status =
  | Healthy
  | Torn of { lost : int } (* records known lost (0 = tail dropped, count unknown) *)
  | Tampered of { offset : int } (* divergence offset; shard quarantined *)

type shard = {
  site : string;
  bucket : int;
  log : Durable.Log.t;
  mutable entries : Hdb.Audit_schema.entry list; (* append order = time order *)
  mutable tail : Hdb.Audit_schema.entry list; (* reversed; entries = rev tail *)
  mutable records : int;
  mutable stranded : int; (* records catalogued but unservable (tampered) *)
  mutable status : status;
}

type t = {
  seed : int;
  bucket_ms : int;
  manifest_device : Durable.Device.t;
  mutable shards : shard list; (* site-major, buckets ascending per site *)
  mutable next_shard_seed : int;
}

type shard_report = {
  r_name : string;
  r_site : string;
  r_status : status;
  r_records : int;
}

type open_report = {
  manifest_rebuilt : bool;
  adopted : int; (* shard devices the manifest did not know *)
  lost : string list; (* catalogued shards with no surviving device *)
  shard_reports : shard_report list;
}

let status_to_string = function
  | Healthy -> "healthy"
  | Torn { lost } -> Printf.sprintf "torn (%d lost)" lost
  | Tampered { offset } -> Printf.sprintf "tampered @%d" offset

let shard_name ~site ~bucket = Printf.sprintf "%s#%d" site bucket

let parse_shard_name name =
  match String.rindex_opt name '#' with
  | None -> None
  | Some i -> (
    let site = String.sub name 0 i in
    match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) with
    | Some bucket -> Some (site, bucket)
    | None -> None)

let default_bucket_ms = 10_000

let create ?(bucket_ms = default_bucket_ms) ?(seed = 0) () =
  { seed;
    bucket_ms;
    manifest_device = Durable.Device.create ~seed:(seed * 7 + 1) ();
    shards = [];
    next_shard_seed = seed * 7 + 2;
  }

let bucket_ms t = t.bucket_ms

let bucket_of t time = if t.bucket_ms <= 0 then 0 else time / t.bucket_ms

let manifest_device t = t.manifest_device

(* The surviving media, for crash simulation / reopen: (name, wal,
   snapshot) per shard — the simulated "directory listing". *)
let devices t =
  List.map
    (fun s ->
      ( shard_name ~site:s.site ~bucket:s.bucket,
        Durable.Log.wal_device s.log,
        Durable.Log.snapshot_device s.log ))
    t.shards

let site_shards t ~site = List.filter (fun s -> String.equal s.site site) t.shards

let sites t =
  List.rev
    (List.fold_left
       (fun acc s -> if List.mem s.site acc then acc else s.site :: acc)
       [] t.shards)

(* Fold the append tail into the committed list on read (amortised). *)
let shard_entries s =
  if s.tail <> [] then begin
    s.entries <- s.entries @ List.rev s.tail;
    s.tail <- []
  end;
  s.entries

(* Records the shard can serve (a tampered shard serves none). *)
let servable s = match s.status with Tampered _ -> 0 | _ -> s.records

let site_records t ~site =
  List.fold_left (fun acc s -> acc + servable s) 0 (site_shards t ~site)

let site_stranded t ~site =
  List.fold_left (fun acc s -> acc + s.stranded) 0 (site_shards t ~site)

let site_degraded t ~site =
  List.exists (fun s -> s.status <> Healthy) (site_shards t ~site)

let shards_degraded t = List.length (List.filter (fun s -> s.status <> Healthy) t.shards)

let total_records t = List.fold_left (fun acc s -> acc + servable s) 0 t.shards

let shard_count t = List.length t.shards

(* The newest archived timestamp for [site]; -1 with nothing archived. *)
let site_high_water t ~site =
  List.fold_left
    (fun acc s ->
      match shard_entries s with
      | [] -> acc
      | es -> max acc (List.fold_left (fun m e -> max m e.Hdb.Audit_schema.time) acc es))
    (-1)
    (site_shards t ~site)

let fresh_shard t ~site ~bucket =
  let seed = t.next_shard_seed in
  t.next_shard_seed <- t.next_shard_seed + 1;
  { site;
    bucket;
    log = Durable.Log.create ~seed ();
    entries = [];
    tail = [];
    records = 0;
    stranded = 0;
    status = Healthy;
  }

(* Keep [t.shards] site-major with buckets ascending within a site: a new
   site's shards go to the end, a new bucket into its site's group in
   bucket order.  Site groups are contiguous by construction. *)
let insert_shard t shard =
  if not (List.exists (fun s -> String.equal s.site shard.site) t.shards) then
    t.shards <- t.shards @ [ shard ]
  else begin
    let rec go = function
      | [] -> [ shard ]
      | s :: rest when String.equal s.site shard.site && s.bucket > shard.bucket ->
        shard :: s :: rest
      | s :: rest
        when String.equal s.site shard.site
             && not (List.exists (fun x -> String.equal x.site shard.site) rest) ->
        s :: shard :: rest
      | s :: rest -> s :: go rest
    in
    t.shards <- go t.shards
  end

let find_shard t ~site ~bucket =
  List.find_opt (fun s -> String.equal s.site site && s.bucket = bucket) t.shards

let shard_for t ~site ~bucket =
  match find_shard t ~site ~bucket with
  | Some s -> s
  | None ->
    let s = fresh_shard t ~site ~bucket in
    insert_shard t s;
    s

let append_entry t ~site entry =
  let s = shard_for t ~site ~bucket:(bucket_of t entry.Hdb.Audit_schema.time) in
  ignore (Durable.Log.append s.log (Hdb.Audit_schema.to_wire entry));
  s.tail <- entry :: s.tail;
  s.records <- s.records + 1

let drop_site_shards t ~site =
  t.shards <- List.filter (fun s -> not (String.equal s.site site)) t.shards

type archive_summary = {
  appended : int; (* fresh records archived this call *)
  rebuilt : bool; (* the site's shards were rebuilt from the fetch *)
}

(* Archive one site's fetched stream (time-sorted).  The prefix at or
   below the high-water mark must already be held record-for-record; any
   disagreement — damaged shard, lost device, corruption hole — rebuilds
   the site's shards wholesale from the fetch. *)
let archive_site t ~site entries =
  let hwm = site_high_water t ~site in
  let old_prefix, fresh =
    List.partition (fun e -> e.Hdb.Audit_schema.time <= hwm) entries
  in
  let held = site_records t ~site in
  let consistent = (not (site_degraded t ~site)) && List.length old_prefix = held in
  if consistent then begin
    List.iter (append_entry t ~site) fresh;
    { appended = List.length fresh; rebuilt = false }
  end
  else begin
    drop_site_shards t ~site;
    List.iter (append_entry t ~site) entries;
    { appended = List.length entries; rebuilt = true }
  end

(* --- consolidation cursors --- *)

(* One cursor per servable shard, priority in site-major bucket order;
   within a site equal times share a bucket, so (time, priority) order
   equals the federation's (time, site-index) order. *)
let cursors t =
  List.filter (fun s -> match s.status with Tampered _ -> false | _ -> true) t.shards
  |> List.mapi (fun i s -> Tournament.cursor ~priority:i (shard_entries s))

let merged t =
  Tournament.merge_cursors ~key:(fun e -> e.Hdb.Audit_schema.time) (cursors t)

let merged_site t ~site =
  List.concat_map
    (fun s -> match s.status with Tampered _ -> [] | _ -> shard_entries s)
    (site_shards t ~site)

(* --- durability --- *)

let manifest_of t =
  { Durable.Manifest.shards =
      List.map
        (fun s ->
          let es = shard_entries s in
          let lo = match es with [] -> 0 | e :: _ -> e.Hdb.Audit_schema.time in
          let hi =
            List.fold_left (fun m e -> max m e.Hdb.Audit_schema.time) lo es
          in
          { Durable.Manifest.name = shard_name ~site:s.site ~bucket:s.bucket;
            lo;
            hi;
            records = s.records;
            chain = Durable.Log.chain_head s.log;
          })
        t.shards;
  }

(* Shards first, manifest second: the manifest never claims records the
   shards do not durably hold (a crash in between leaves the manifest
   behind, which reopen treats as extra-records-survived, not loss). *)
let sync t =
  List.iter (fun s -> Durable.Log.sync s.log) t.shards;
  Durable.Manifest.write t.manifest_device (manifest_of t)

let checkpoint t =
  List.iter
    (fun s ->
      let image = List.map Hdb.Audit_schema.to_wire (shard_entries s) in
      Durable.Log.checkpoint s.log ~entries:image)
    t.shards;
  Durable.Manifest.write t.manifest_device (manifest_of t)

(* --- open-or-recover --- *)

(* Recover one shard log; [expected] is its manifest descriptor if the
   manifest survived. *)
let recover_shard ~name ~site ~bucket ~log ~expected =
  let report = Durable.Log.open_or_recover log in
  let decoded = ref [] in
  let undecodable = ref 0 in
  List.iter
    (fun wire ->
      match Hdb.Audit_schema.of_wire wire with
      | Some e -> decoded := e :: !decoded
      | None -> incr undecodable)
    report.Durable.Recovery.entries;
  let entries = List.rev !decoded in
  let recovered = List.length entries in
  let status, stranded =
    match report.Durable.Recovery.verdict with
    | Durable.Recovery.Tamper_detected { offset } ->
      ( Tampered { offset },
        match expected with Some d -> d.Durable.Manifest.records | None -> recovered )
    | Durable.Recovery.Verified | Durable.Recovery.Torn_tail -> (
      match expected with
      | Some d when recovered < d.Durable.Manifest.records ->
        (Torn { lost = d.Durable.Manifest.records - recovered }, 0)
      | Some _ | None ->
        if Durable.Recovery.dropped_tail report || !undecodable > 0 then
          (Torn { lost = !undecodable }, 0)
        else (Healthy, 0))
  in
  let shard =
    { site; bucket; log; entries; tail = []; records = recovered; stranded; status }
  in
  { r_name = name; r_site = site; r_status = status; r_records = recovered }, shard

(* Rebuild a store from surviving media: the manifest device plus the
   "directory listing" of shard devices [(name, wal, snapshot)].  A
   readable manifest anchors per-shard expectations; an unreadable one is
   rebuilt from the shard scans. *)
let reopen ?(bucket_ms = default_bucket_ms) ?(seed = 0) ~manifest ~shards () =
  let catalogue, manifest_rebuilt =
    match Durable.Manifest.read manifest with
    | Ok (Some m) -> (Some m, false)
    | Ok None -> (None, false)
    | Error _ -> (None, true)
  in
  let t =
    { seed;
      bucket_ms;
      manifest_device = manifest;
      shards = [];
      next_shard_seed = (seed * 7) + 2 + List.length shards;
    }
  in
  let adopted = ref 0 in
  let reports = ref [] in
  List.iter
    (fun (name, wal, snapshot) ->
      match parse_shard_name name with
      | None -> ()
      | Some (site, bucket) ->
        let expected = Option.bind catalogue (fun m -> Durable.Manifest.find m name) in
        (match (catalogue, expected) with
        | Some _, None -> incr adopted (* created after the last manifest write *)
        | _ -> ());
        let log = Durable.Log.of_devices ~wal ~snapshot in
        let report, shard = recover_shard ~name ~site ~bucket ~log ~expected in
        reports := report :: !reports;
        insert_shard t shard)
    shards;
  let lost =
    match catalogue with
    | None -> []
    | Some m ->
      List.filter_map
        (fun (d : Durable.Manifest.shard) ->
          if List.exists (fun (name, _, _) -> String.equal name d.name) shards then None
          else Some d.name)
        m.Durable.Manifest.shards
  in
  (* A lost shard leaves its site inconsistent: surface it as a torn
     placeholder so the next clean fetch rebuilds the site wholesale. *)
  List.iter
    (fun name ->
      match (parse_shard_name name, catalogue) with
      | Some (site, bucket), Some m ->
        let records =
          match Durable.Manifest.find m name with
          | Some d -> d.Durable.Manifest.records
          | None -> 0
        in
        let s = fresh_shard t ~site ~bucket in
        s.status <- Torn { lost = records };
        insert_shard t s
      | _ -> ())
    lost;
  (* Rewrite the manifest to match what actually survived. *)
  Durable.Manifest.write t.manifest_device (manifest_of t);
  (t, { manifest_rebuilt; adopted = !adopted; lost; shard_reports = List.rev !reports })

let shard_status t ~site ~bucket =
  Option.map (fun s -> s.status) (find_shard t ~site ~bucket)

type shard_info = {
  name : string;
  site : string;
  bucket : int;
  records : int;
  stranded : int;
  status : status;
}

let shard_infos t =
  List.map
    (fun (s : shard) ->
      { name = shard_name ~site:s.site ~bucket:s.bucket;
        site = s.site;
        bucket = s.bucket;
        records = s.records;
        stranded = s.stranded;
        status = s.status;
      })
    t.shards

let pp ppf t =
  Fmt.pf ppf "shard store: %d shard(s), %d record(s), %d degraded@." (shard_count t)
    (total_records t) (shards_degraded t);
  List.iter
    (fun (i : shard_info) ->
      Fmt.pf ppf "  %s: %d record(s) %s@." i.name i.records (status_to_string i.status))
    (shard_infos t)
