(* Bounded retry with exponential backoff and jitter, over a *simulated*
   millisecond clock.  Consolidation must be reproducible bit-for-bit (the
   fault-matrix suite replays seeded failure schedules), so nothing here
   reads wall-clock time or sleeps: the caller passes a clock cell that
   retries advance by their computed delays, and jitter draws from the
   shared SplitMix stream. *)

type policy = {
  max_attempts : int; (* total tries, including the first *)
  base_delay : int; (* ms before the second attempt *)
  max_delay : int; (* backoff ceiling, ms *)
  jitter : float; (* +/- fraction of the delay, in [0, 1] *)
  deadline : int; (* overall budget, ms; attempts stop once exceeded *)
}

let default =
  { max_attempts = 4; base_delay = 50; max_delay = 2_000; jitter = 0.25; deadline = 10_000 }

let no_retry = { default with max_attempts = 1 }

type stats = {
  attempts : int;
  elapsed : int; (* simulated ms spent waiting between attempts *)
}

(* Backoff before attempt [n+1] (1-based n): base * 2^(n-1), capped, then
   jittered multiplicatively in [1 - j/2, 1 + j/2]. *)
let delay_before policy prng ~attempt =
  let exp = Int.shift_left 1 (min 20 (attempt - 1)) in
  let raw = min policy.max_delay (policy.base_delay * exp) in
  if policy.jitter <= 0. then raw
  else
    let factor = 1. -. (policy.jitter /. 2.) +. (policy.jitter *. Splitmix.float prng) in
    max 0 (int_of_float (float_of_int raw *. factor))

(* The deadline boundary, pinned: the budget is the half-open window
   [0, deadline) of elapsed simulated ms.  An attempt that would start at
   exactly [deadline] is refused — both the post-failure check and the
   post-backoff check use the same closed comparison, so the boundary
   cannot drift between the two call sites (regression-tested). *)
let deadline_reached policy ~start ~clock = clock - start >= policy.deadline

(* Run [f] until it returns [Ok], attempts are exhausted, or the deadline
   is blown.  [f] receives the 1-based attempt number.  The last error wins;
   the clock cell ends at start + elapsed backoff. *)
let run ?(policy = default) ~prng ~clock f =
  let start = !clock in
  let rec go attempt =
    match f ~attempt with
    | Ok v -> (Ok v, { attempts = attempt; elapsed = !clock - start })
    | Error e ->
      if attempt >= policy.max_attempts || deadline_reached policy ~start ~clock:!clock
      then (Error e, { attempts = attempt; elapsed = !clock - start })
      else begin
        clock := !clock + delay_before policy prng ~attempt;
        if deadline_reached policy ~start ~clock:!clock then
          (Error e, { attempts = attempt; elapsed = !clock - start })
        else go (attempt + 1)
      end
  in
  go 1

let pp_stats ppf s = Fmt.pf ppf "%d attempt(s), %d ms backoff" s.attempts s.elapsed
