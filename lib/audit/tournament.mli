(** Tournament (k-way) merge over sorted cursors: O(N log k), stable and
    deterministic — ties across cursors resolve by cursor priority, and
    records within one cursor keep cursor order.  The consolidation path
    and the sharded store both merge through it. *)

type 'a cursor = {
  mutable rest : 'a list;
  priority : int;  (** tie-break rank; lower wins on equal keys *)
}

val cursor : ?priority:int -> 'a list -> 'a cursor

val merge_cursors : key:('a -> int) -> 'a cursor list -> 'a list
(** Merge already-sorted cursors into one key-ordered list. *)

val merge : key:('a -> int) -> 'a list list -> 'a list
(** Merge sorted streams; stream order is the tie-break priority. *)

val merge_entries :
  Hdb.Audit_schema.entry list list -> Hdb.Audit_schema.entry list
(** Streams of audit entries keyed by timestamp. *)
