(* Deterministic fault injection around a Site: the harness the
   fault-matrix suite drives.  A wrapped site can be unavailable (every
   fetch fails until healed), slow (an attempt blows its timeout),
   transiently flaky (an attempt fails but a retry may succeed) or
   corrupting (individual records arrive damaged and must be quarantined).

   Every decision draws from a SplitMix stream owned by the wrapper, so a
   given seed replays the exact failure schedule — and [heal] restores the
   site, which is what lets the convergence oracle compare a degraded run
   against its fault-free baseline. *)

type failure =
  | Unavailable (* persistent outage until healed *)
  | Timed_out (* this attempt exceeded its deadline *)
  | Transient (* flaky attempt; retrying may succeed *)

let failure_to_string = function
  | Unavailable -> "unavailable"
  | Timed_out -> "timed out"
  | Transient -> "transient failure"

type config = {
  p_unavailable : float; (* site down for the whole run, decided at wrap *)
  p_timeout : float; (* per attempt *)
  p_flaky : float; (* per attempt *)
  p_corrupt : float; (* per record on a successful fetch *)
  latency : int; (* simulated ms per successful fetch *)
  timeout_cost : int; (* simulated ms burned by a timed-out attempt *)
}

let no_faults =
  { p_unavailable = 0.;
    p_timeout = 0.;
    p_flaky = 0.;
    p_corrupt = 0.;
    latency = 1;
    timeout_cost = 1_000;
  }

let default_config =
  { no_faults with p_unavailable = 0.1; p_timeout = 0.1; p_flaky = 0.2; p_corrupt = 0.05 }

type t = {
  mutable site : Site.t; (* mutable so a recovered site can be reseated *)
  prng : Splitmix.t;
  mutable config : config;
  mutable down : bool; (* the persistent-outage draw *)
}

let wrap ?(config = no_faults) ~seed site =
  let prng = Splitmix.create ~seed in
  let down = Splitmix.bool prng ~probability:config.p_unavailable in
  { site; prng; config; down }

let site t = t.site

(* Point the wrapper at a replacement — e.g. a site rebuilt from its WAL
   after a crash.  The PRNG keeps its position: a reseat does not disturb
   the fault schedule. *)
let reseat t site = t.site <- site

let config t = t.config

let is_down t = t.down

(* Clear every injected fault: the site is reachable and clean again.  The
   PRNG keeps its position so healing does not disturb other sites'
   schedules. *)
let heal t =
  t.config <- no_faults;
  t.down <- false

(* Force the persistent outage on — e.g. to script a breaker trajectory. *)
let take_down t = t.down <- true

let restore t = t.down <- false

(* Raw re-encoding of a fetched entry, as a corrupted record would appear
   in transit; the damaged field is replaced by garbage so the mapping
   rejects it downstream. *)
let garbled_raw prng (e : Hdb.Audit_schema.entry) =
  let fields = Hdb.Audit_schema.to_assoc e in
  let victim = Splitmix.int prng (List.length fields) in
  List.mapi (fun i (k, v) -> if i = victim then (k, "\xef\xbf\xbd!corrupt") else (k, v)) fields

type fetched = {
  delivered : Hdb.Audit_schema.entry list; (* clean records, store order *)
  corrupted : (int * (string * string) list * string) list;
      (* (seq, garbled raw, reason) for records damaged in transit *)
}

(* One fetch attempt at simulated time [clock].  Success walks the whole
   store and damages each record independently with [p_corrupt]; the site
   itself keeps the originals, so a later clean fetch recovers them. *)
let fetch t ~clock =
  if t.down then Error Unavailable
  else if Splitmix.bool t.prng ~probability:t.config.p_timeout then begin
    clock := !clock + t.config.timeout_cost;
    Error Timed_out
  end
  else if Splitmix.bool t.prng ~probability:t.config.p_flaky then Error Transient
  else begin
    clock := !clock + t.config.latency;
    let entries = Site.entries t.site in
    let _, delivered_rev, corrupted_rev =
      List.fold_left
        (fun (seq, delivered, corrupted) entry ->
          if Splitmix.bool t.prng ~probability:t.config.p_corrupt then
            ( seq + 1,
              delivered,
              (seq, garbled_raw t.prng entry, "corrupt in transit") :: corrupted )
          else (seq + 1, entry :: delivered, corrupted))
        (0, [], []) entries
    in
    Ok { delivered = List.rev delivered_rev; corrupted = List.rev corrupted_rev }
  end
