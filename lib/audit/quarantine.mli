(** Holding area for audit records the federation could not take in.

    Raw records a site's mapping rejected, or records that arrived corrupted
    from a remote fetch, are parked here — with the offending raw record,
    the site-local sequence number (the exactly-once key) and a reason — so
    they can be reprocessed after a mapping fix or a clean re-fetch.  With
    quarantine in the accounting, every input record is either ingested,
    quarantined, or at a skipped site: nothing is silently dropped. *)

type item = {
  site : string;
  seq : int;
  raw : (string * string) list;
  reason : string;
}

type t

val create : unit -> t
val length : t -> int
val mem : t -> site:string -> seq:int -> bool

val add :
  t -> site:string -> seq:int -> raw:(string * string) list -> reason:string -> unit
(** Idempotent on [(site, seq)]: re-adding replaces the reason without
    duplicating the item. *)

val remove : t -> site:string -> seq:int -> unit
val items : t -> item list
val site_items : t -> site:string -> item list
val site_count : t -> site:string -> int

val take_site : t -> site:string -> item list
(** Remove and return every item of [site] — the reprocessing entry point;
    the caller re-applies the (possibly fixed) mapping and re-adds whatever
    still fails. *)

val clear : t -> unit

(** {2 Durability}

    A quarantine may sit on a {!Durable.Log.t}: every mutation ({!add},
    {!remove}, {!clear}) is then framed as an op record into the
    write-ahead log {e before} the tables change, so quarantined items —
    and their resolution — survive a restart.  Mutations are durable once
    {!sync}ed; {!checkpoint} compacts the op history into a snapshot of
    the live items. *)

val attach_log : t -> Durable.Log.t -> unit
(** Future mutations are write-ahead logged.  Items already held are
    {e not} retro-logged — attach at creation or via {!restore}. *)

val log : t -> Durable.Log.t option

val sync : t -> unit
(** fsync the attached log (no-op without one). *)

val checkpoint : t -> unit
(** Write the live items as a snapshot image and truncate the WAL. *)

val enable_auto_checkpoint : ?policy:Durable.Log.checkpoint_policy -> t -> unit
(** Register a background-compaction policy (default: every 1024 WAL
    records) on the attached log; no-op without one.  Safe because
    mutations are write-ahead: the image taken when the trigger fires is
    exactly the state the logged ops produce. *)

val restore : t -> Durable.Log.t -> Durable.Recovery.t * int
(** Open-or-recover [log], replay the verified ops into [t] (assumed
    fresh), attach the log, and return the recovery report plus the count
    of ops that no longer decode (0 unless the codec changed). *)

val open_durable : Durable.Log.t -> t * Durable.Recovery.t * int
(** [create] + {!restore}. *)

val pp_item : Format.formatter -> item -> unit
val pp : Format.formatter -> t -> unit
