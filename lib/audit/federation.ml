(* The PRIMA Audit Management component: a consolidated virtual view over
   every site's audit trail (the role DB2 Information Integrator plays in
   the paper's first instantiation).  Entries are merged by timestamp with
   a k-way min-heap merge; per-site logs are append-ordered so each is
   already sorted, and out-of-order sites are sorted defensively.

   Two consolidation paths coexist:

   - [consolidated] is the trusted direct view — it reads every site's
     store in-process and cannot fail; it is also the fault-free baseline
     the fault-matrix suite compares against;
   - [consolidated_result] is the production path: each site is fetched
     through its fault wrapper (if any) under retry/backoff, gated by a
     per-site circuit breaker, with corrupted records quarantined — and the
     result carries a health report accounting for 100% of input records
     (delivered + quarantined + stranded at skipped sites) plus the
     completeness fraction downstream coverage must surface. *)

type member = {
  msite : Site.t;
  mutable fault : Fault.t option; (* None = perfectly reliable transport *)
  breaker : Breaker.t;
}

type t = {
  mutable members : member list;
  clock : int ref; (* simulated ms; advanced by retries and fetch latency *)
  mutable retry : Retry.policy;
  prng : Splitmix.t; (* jitter stream for retry backoff *)
  transit : Quarantine.t; (* records corrupted in transit, latest fetch *)
}

let create ?(retry = Retry.default) ?(seed = 0) () =
  { members = [];
    clock = ref 0;
    retry;
    prng = Splitmix.create ~seed;
    transit = Quarantine.create ();
  }

let member ?fault ?breaker site =
  { msite = site; fault; breaker = Breaker.create ?config:breaker () }

let add_member t m = t.members <- t.members @ [ m ]

let add_site t site = add_member t (member site)

let add_faulty_site ?breaker t fault = add_member t (member ~fault ?breaker (Fault.site fault))

let of_sites sites =
  let t = create () in
  List.iter (add_site t) sites;
  t

let sites t = List.map (fun m -> m.msite) t.members

let site t name =
  List.find_opt (fun s -> String.equal (Site.name s) name) (sites t)

let find_member t name =
  List.find_opt (fun m -> String.equal (Site.name m.msite) name) t.members

let fault t name = Option.bind (find_member t name) (fun m -> m.fault)

let breaker t name = Option.map (fun m -> m.breaker) (find_member t name)

let set_fault t name fault =
  match find_member t name with
  | Some m -> m.fault <- fault
  | None -> invalid_arg (Printf.sprintf "Federation.set_fault: unknown site %s" name)

let heal_all t =
  List.iter (fun m -> Option.iter Fault.heal m.fault) t.members

let clock t = !(t.clock)

let advance_clock t ms = t.clock := !(t.clock) + ms

let retry_policy t = t.retry

let set_retry_policy t policy = t.retry <- policy

let transit_quarantine t = t.transit

let total_entries t =
  List.fold_left (fun acc site -> acc + Site.length site) 0 (sites t)

let is_sorted entries =
  let rec go = function
    | a :: (b :: _ as rest) ->
      a.Hdb.Audit_schema.time <= b.Hdb.Audit_schema.time && go rest
    | [ _ ] | [] -> true
  in
  go entries

let sort_defensively entries =
  if is_sorted entries then entries
  else
    List.stable_sort
      (fun a b -> Int.compare a.Hdb.Audit_schema.time b.Hdb.Audit_schema.time)
      entries

let sorted_entries site = sort_defensively (Site.entries site)

(* K-way merge on a binary min-heap keyed by (time, site index): ties
   resolve in site order, and within a site the next head is only pushed
   after its predecessor pops, so the merge is stable and deterministic.
   O(N log k) against the former per-element scan over all heads. *)
module Heap = struct
  type node = {
    time : int;
    site : int;
    entry : Hdb.Audit_schema.entry;
    rest : Hdb.Audit_schema.entry list;
  }

  type h = {
    mutable nodes : node array;
    mutable size : int;
  }

  let lt a b = a.time < b.time || (a.time = b.time && a.site < b.site)

  let create capacity node = { nodes = Array.make (max 1 capacity) node; size = 0 }

  let swap h i j =
    let tmp = h.nodes.(i) in
    h.nodes.(i) <- h.nodes.(j);
    h.nodes.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt h.nodes.(i) h.nodes.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && lt h.nodes.(l) h.nodes.(!smallest) then smallest := l;
    if r < h.size && lt h.nodes.(r) h.nodes.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h node =
    if h.size >= Array.length h.nodes then begin
      let nodes = Array.make (2 * Array.length h.nodes) node in
      Array.blit h.nodes 0 nodes 0 h.size;
      h.nodes <- nodes
    end;
    h.nodes.(h.size) <- node;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let pop h =
    let top = h.nodes.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.nodes.(0) <- h.nodes.(h.size);
      sift_down h 0
    end;
    top
end

(* Merge per-site streams (already sorted) into one time-ordered list. *)
let merge_streams (streams : Hdb.Audit_schema.entry list list) :
    Hdb.Audit_schema.entry list =
  let heads =
    List.filter_map
      (fun (i, stream) ->
        match stream with
        | [] -> None
        | e :: rest ->
          Some { Heap.time = e.Hdb.Audit_schema.time; site = i; entry = e; rest })
      (List.mapi (fun i stream -> (i, stream)) streams)
  in
  match heads with
  | [] -> []
  | first :: _ ->
    let heap = Heap.create (List.length heads) first in
    List.iter (Heap.push heap) heads;
    let acc = ref [] in
    while heap.Heap.size > 0 do
      let node = Heap.pop heap in
      acc := node.Heap.entry :: !acc;
      match node.Heap.rest with
      | [] -> ()
      | e :: rest ->
        Heap.push heap
          { Heap.time = e.Hdb.Audit_schema.time; site = node.Heap.site; entry = e; rest }
    done;
    List.rev !acc

(* The trusted direct view: reads every store in-process, never fails.
   Also the fault-free baseline for the fault-matrix suite. *)
let consolidated t : Hdb.Audit_schema.entry list =
  merge_streams (List.map sorted_entries (sites t))

(* One site through its fault wrapper under retry; [None] fault is a
   perfect in-process transport. *)
let fetch_member t m : (Fault.fetched * int, string) result =
  match m.fault with
  | None ->
    Ok ({ Fault.delivered = Site.entries m.msite; corrupted = [] }, 0)
  | Some f ->
    let result, stats =
      Retry.run ~policy:t.retry ~prng:t.prng ~clock:t.clock (fun ~attempt:_ ->
          Fault.fetch f ~clock:t.clock)
    in
    (match result with
    | Ok fetched -> Ok (fetched, stats.Retry.attempts - 1)
    | Error failure -> Error (Fault.failure_to_string failure))

type result_t = {
  entries : Hdb.Audit_schema.entry list;
  health : Health.t;
}

(* The production path: breaker-gated, retried fetches; corrupted records
   quarantined; a health report accounting for every input record. *)
let consolidated_result t : result_t =
  let streams_rev, healths_rev =
    List.fold_left
      (fun (streams, healths) m ->
        let name = Site.name m.msite in
        let store_len = Site.length m.msite in
        let ingest_q = Site.quarantined_count m.msite in
        if not (Breaker.allow m.breaker ~now:!(t.clock)) then
          let h =
            { Health.site = name;
              status = Health.Skipped Health.Breaker_open;
              entries = 0;
              quarantined = ingest_q;
              skipped_entries = store_len;
              breaker = Breaker.state m.breaker;
              trips = Breaker.trips m.breaker;
            }
          in
          (streams, h :: healths)
        else
          match fetch_member t m with
          | Ok (fetched, retries) ->
            Breaker.record_success m.breaker;
            (* Latest fetch supersedes the site's transit quarantine. *)
            ignore (Quarantine.take_site t.transit ~site:name);
            List.iter
              (fun (seq, raw, reason) -> Quarantine.add t.transit ~site:name ~seq ~raw ~reason)
              fetched.Fault.corrupted;
            let corrupted = List.length fetched.Fault.corrupted in
            let h =
              { Health.site = name;
                status = Health.Delivered { retries };
                entries = store_len - corrupted;
                quarantined = ingest_q + corrupted;
                skipped_entries = 0;
                breaker = Breaker.state m.breaker;
                trips = Breaker.trips m.breaker;
              }
            in
            (sort_defensively fetched.Fault.delivered :: streams, h :: healths)
          | Error why ->
            Breaker.record_failure m.breaker ~now:!(t.clock);
            let h =
              { Health.site = name;
                status = Health.Skipped (Health.Fetch_failed why);
                entries = 0;
                quarantined = ingest_q;
                skipped_entries = store_len;
                breaker = Breaker.state m.breaker;
                trips = Breaker.trips m.breaker;
              }
            in
            (streams, h :: healths))
      ([], []) t.members
  in
  { entries = merge_streams (List.rev streams_rev);
    health = Health.of_sites (List.rev healths_rev);
  }

(* The consolidated view as P_AL. *)
let to_policy t : Prima_core.Policy.t = To_policy.policy_of_entries (consolidated t)

(* Entries within a time window — e.g. one refinement epoch. *)
let window t ~time_from ~time_to =
  List.filter
    (fun e -> e.Hdb.Audit_schema.time >= time_from && e.Hdb.Audit_schema.time <= time_to)
    (consolidated t)

let pp ppf t =
  Fmt.pf ppf "federation of %d sites, %d entries@." (List.length t.members)
    (total_entries t);
  List.iter
    (fun m ->
      Fmt.pf ppf "  %s: %d entries%s, breaker %a@." (Site.name m.msite)
        (Site.length m.msite)
        (match m.fault with
        | Some f when Fault.is_down f -> " (down)"
        | Some _ -> " (fault-injected)"
        | None -> "")
        Breaker.pp_state (Breaker.state m.breaker))
    t.members
