(* The PRIMA Audit Management component: a consolidated virtual view over
   every site's audit trail (the role DB2 Information Integrator plays in
   the paper's first instantiation).  Entries are merged by timestamp with
   a k-way min-heap merge; per-site logs are append-ordered so each is
   already sorted, and out-of-order sites are sorted defensively.

   Two consolidation paths coexist:

   - [consolidated] is the trusted direct view — it reads every site's
     store in-process and cannot fail; it is also the fault-free baseline
     the fault-matrix suite compares against;
   - [consolidated_result] is the production path: each site is fetched
     through its fault wrapper (if any) under retry/backoff, gated by a
     per-site circuit breaker, with corrupted records quarantined — and the
     result carries a health report accounting for 100% of input records
     (delivered + quarantined + stranded at skipped sites) plus the
     completeness fraction downstream coverage must surface. *)

type member = {
  mutable msite : Site.t; (* mutable so a crash-recovered site can be reseated *)
  mutable fault : Fault.t option; (* None = perfectly reliable transport *)
  breaker : Breaker.t;
}

type t = {
  mutable members : member list;
  clock : int ref; (* simulated ms; advanced by retries and fetch latency *)
  mutable retry : Retry.policy;
  prng : Splitmix.t; (* jitter stream for retry backoff *)
  transit : Quarantine.t; (* records corrupted in transit, latest fetch *)
  (* The durable consolidated archive (optional): successful fetches are
     archived per (site, time-range) shard, and a site whose live fetch
     fails is served stale from its shards instead of being skipped. *)
  mutable archive : Shard_store.t option;
  (* Tenant admission controller (optional), shared with every member
     site's ingestion gate. *)
  mutable admission : Admission.t option;
}

let create ?(retry = Retry.default) ?(seed = 0) () =
  { members = [];
    clock = ref 0;
    retry;
    prng = Splitmix.create ~seed;
    transit = Quarantine.create ();
    archive = None;
    admission = None;
  }

let member ?fault ?breaker site =
  { msite = site; fault; breaker = Breaker.create ?config:breaker () }

let add_member t m =
  t.members <- t.members @ [ m ];
  Site.set_admission m.msite t.admission

let add_site t site = add_member t (member site)

let add_faulty_site ?breaker t fault = add_member t (member ~fault ?breaker (Fault.site fault))

let of_sites sites =
  let t = create () in
  List.iter (add_site t) sites;
  t

let sites t = List.map (fun m -> m.msite) t.members

let site t name =
  List.find_opt (fun s -> String.equal (Site.name s) name) (sites t)

let find_member t name =
  List.find_opt (fun m -> String.equal (Site.name m.msite) name) t.members

let fault t name = Option.bind (find_member t name) (fun m -> m.fault)

let breaker t name = Option.map (fun m -> m.breaker) (find_member t name)

let set_fault t name fault =
  match find_member t name with
  | Some m -> m.fault <- fault
  | None -> invalid_arg (Printf.sprintf "Federation.set_fault: unknown site %s" name)

(* Swap in a replacement site — e.g. one rebuilt from its WAL after a
   crash — keeping the member's breaker history and fault schedule. *)
let reseat_site t name site =
  match find_member t name with
  | Some m ->
    m.msite <- site;
    Site.set_admission site t.admission;
    Option.iter (fun f -> Fault.reseat f site) m.fault
  | None -> invalid_arg (Printf.sprintf "Federation.reseat_site: unknown site %s" name)

let attach_archive t archive = t.archive <- Some archive

let archive t = t.archive

(* {2 Tenant admission} — one controller shared by every member site's
   ingestion gate, its backpressure fed from the federation's own health
   signals. *)

let set_admission t admission =
  t.admission <- admission;
  List.iter (fun m -> Site.set_admission m.msite admission) t.members

let admission t = t.admission

(* The live overload signals backpressure is derived from: un-synced
   site-WAL records, degraded archive shards, and open breakers. *)
let pressure_signals t =
  let wal_backlog =
    List.fold_left
      (fun acc m ->
        match Site.wal m.msite with
        | None -> acc
        | Some log -> acc + Durable.Log.pending_records log)
      0 t.members
  in
  let degraded_shards =
    match t.archive with None -> 0 | Some a -> Shard_store.shards_degraded a
  in
  let open_breakers =
    List.length
      (List.filter (fun m -> Breaker.state m.breaker = Breaker.Open) t.members)
  in
  { Admission.wal_backlog; degraded_shards; open_breakers }

(* Re-derive backpressure and raise/lower the admission bar; a no-op
   without a controller. *)
let refresh_pressure t =
  Option.iter (fun adm -> Admission.set_pressure adm (pressure_signals t)) t.admission

let class_health_rows t =
  match t.admission with
  | None -> []
  | Some adm ->
      List.map
        (fun (s : Admission.class_stats) ->
          { Health.cls = s.Admission.cls;
            weight = s.Admission.weight;
            admitted = s.Admission.admitted;
            brownouts = s.Admission.brownouts;
            shed = s.Admission.shed;
          })
        (Admission.stats adm)

let heal_all t =
  List.iter (fun m -> Option.iter Fault.heal m.fault) t.members

let clock t = !(t.clock)

let advance_clock t ms = t.clock := !(t.clock) + ms

let retry_policy t = t.retry

let set_retry_policy t policy = t.retry <- policy

let transit_quarantine t = t.transit

let total_entries t =
  List.fold_left (fun acc site -> acc + Site.length site) 0 (sites t)

let is_sorted entries =
  let rec go = function
    | a :: (b :: _ as rest) ->
      a.Hdb.Audit_schema.time <= b.Hdb.Audit_schema.time && go rest
    | [ _ ] | [] -> true
  in
  go entries

let sort_defensively entries =
  if is_sorted entries then entries
  else
    List.stable_sort
      (fun a b -> Int.compare a.Hdb.Audit_schema.time b.Hdb.Audit_schema.time)
      entries

let sorted_entries site = sort_defensively (Site.entries site)

(* Merge per-site streams (already sorted) into one time-ordered list —
   a tournament merge keyed (time, site index): ties resolve in site
   order and within a site records keep append order, so the merge is
   stable and deterministic (pinned by the QCheck parity test against a
   global stable sort). *)
let merge_streams = Tournament.merge_entries

(* The trusted direct view: reads every store in-process, never fails.
   Also the fault-free baseline for the fault-matrix suite. *)
let consolidated t : Hdb.Audit_schema.entry list =
  merge_streams (List.map sorted_entries (sites t))

(* One site through its fault wrapper under retry; [None] fault is a
   perfect in-process transport. *)
let fetch_member t m : (Fault.fetched * int, string) result =
  match m.fault with
  | None ->
    Ok ({ Fault.delivered = Site.entries m.msite; corrupted = [] }, 0)
  | Some f ->
    let result, stats =
      Retry.run ~policy:t.retry ~prng:t.prng ~clock:t.clock (fun ~attempt:_ ->
          Fault.fetch f ~clock:t.clock)
    in
    (match result with
    | Ok fetched -> Ok (fetched, stats.Retry.attempts - 1)
    | Error failure -> Error (Fault.failure_to_string failure))

type result_t = {
  entries : Hdb.Audit_schema.entry list;
  health : Health.t;
}

(* The production path: breaker-gated, retried fetches; corrupted records
   quarantined; a health report accounting for every input record.

   With an archive attached, a successful fetch is archived into the
   site's shards, and a site whose live fetch fails (or whose breaker is
   open) is served {e stale} from its servable shards: the archived
   records count as delivered, the lag as stranded, so completeness still
   measures exactly what the merge contains.  Per-site durability state —
   shard health, a pending site-WAL replay — rides on each health entry
   so downstream coverage stays a lower bound while anything durable is
   damaged. *)
let consolidated_result t : result_t =
  (* Consolidation observes the freshest overload signals, so the
     admission bar tracks the federation's actual health. *)
  refresh_pressure t;
  let streams_rev, healths_rev =
    List.fold_left
      (fun (streams, healths) m ->
        let name = Site.name m.msite in
        let store_len = Site.length m.msite in
        let ingest_q = Site.quarantined_count m.msite in
        let site_degraded = Site.durably_degraded m.msite in
        let shards, shards_degraded =
          match t.archive with
          | None -> (0, 0)
          | Some a ->
            let mine =
              List.filter
                (fun (i : Shard_store.shard_info) -> String.equal i.Shard_store.site name)
                (Shard_store.shard_infos a)
            in
            ( List.length mine,
              List.length
                (List.filter
                   (fun (i : Shard_store.shard_info) ->
                     i.Shard_store.status <> Shard_store.Healthy)
                   mine) )
        in
        let health ~status ~entries ~quarantined ~skipped_entries =
          Health.make ~shards ~shards_degraded ~site_degraded ~site:name ~status
            ~entries ~quarantined ~skipped_entries
            ~breaker:(Breaker.state m.breaker) ~trips:(Breaker.trips m.breaker) ()
        in
        (* A failed (or breaker-gated) live fetch degrades to the durable
           archive when it can serve anything; otherwise the site is
           skipped outright. *)
        let degrade ~skip_status =
          match t.archive with
          | Some a when Shard_store.site_records a ~site:name > 0 ->
            let archived = Shard_store.site_records a ~site:name in
            let lag = max 0 (store_len - archived) in
            let h =
              health
                ~status:(Health.Stale { archived; lag })
                ~entries:archived ~quarantined:ingest_q ~skipped_entries:lag
            in
            (Shard_store.merged_site a ~site:name :: streams, h :: healths)
          | _ ->
            let h =
              health ~status:skip_status ~entries:0 ~quarantined:ingest_q
                ~skipped_entries:store_len
            in
            (streams, h :: healths)
        in
        if not (Breaker.allow m.breaker ~now:!(t.clock)) then
          degrade ~skip_status:(Health.Skipped Health.Breaker_open)
        else
          match fetch_member t m with
          | Ok (fetched, retries) ->
            Breaker.record_success m.breaker;
            (* Latest fetch supersedes the site's transit quarantine. *)
            ignore (Quarantine.take_site t.transit ~site:name);
            List.iter
              (fun (seq, raw, reason) -> Quarantine.add t.transit ~site:name ~seq ~raw ~reason)
              fetched.Fault.corrupted;
            let corrupted = List.length fetched.Fault.corrupted in
            let stream = sort_defensively fetched.Fault.delivered in
            Option.iter
              (fun a -> ignore (Shard_store.archive_site a ~site:name stream))
              t.archive;
            let h =
              health
                ~status:(Health.Delivered { retries })
                ~entries:(store_len - corrupted)
                ~quarantined:(ingest_q + corrupted) ~skipped_entries:0
            in
            (stream :: streams, h :: healths)
          | Error why ->
            Breaker.record_failure m.breaker ~now:!(t.clock);
            degrade ~skip_status:(Health.Skipped (Health.Fetch_failed why)))
      ([], []) t.members
  in
  { entries = merge_streams (List.rev streams_rev);
    health = Health.of_sites ~classes:(class_health_rows t) (List.rev healths_rev);
  }

(* The consolidated view as P_AL. *)
let to_policy t : Prima_core.Policy.t = To_policy.policy_of_entries (consolidated t)

(* Entries within a time window — e.g. one refinement epoch. *)
let window t ~time_from ~time_to =
  List.filter
    (fun e -> e.Hdb.Audit_schema.time >= time_from && e.Hdb.Audit_schema.time <= time_to)
    (consolidated t)

let pp ppf t =
  Fmt.pf ppf "federation of %d sites, %d entries@." (List.length t.members)
    (total_entries t);
  List.iter
    (fun m ->
      Fmt.pf ppf "  %s: %d entries%s, breaker %a@." (Site.name m.msite)
        (Site.length m.msite)
        (match m.fault with
        | Some f when Fault.is_down f -> " (down)"
        | Some _ -> " (fault-injected)"
        | None -> "")
        Breaker.pp_state (Breaker.state m.breaker))
    t.members
