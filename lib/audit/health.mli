(** The health report a fault-aware consolidation returns alongside its
    merged entries.

    Accounting invariant: every input record known to the federation is
    exactly one of delivered, quarantined, or stranded at a skipped site —
    [delivered + quarantined + skipped_entries = total] — and
    [completeness = delivered / total].  Coverage computed over a partial
    trail must be labelled a lower bound carrying this fraction. *)

type skip_reason =
  | Breaker_open
  | Fetch_failed of string  (** retries exhausted; the last failure *)

type site_status =
  | Delivered of { retries : int }
  | Skipped of skip_reason

type site_health = {
  site : string;
  status : site_status;
  entries : int;
  quarantined : int;
  skipped_entries : int;
  breaker : Breaker.state;
  trips : int;  (** lifetime breaker trips for this site *)
}

type t = {
  sites : site_health list;
  delivered : int;
  quarantined : int;
  skipped_entries : int;
  total : int;
  completeness : float;
}

val of_sites : site_health list -> t
val complete : t -> bool
val site_ok : site_health -> bool
val skipped_sites : t -> site_health list
val skip_reason_to_string : skip_reason -> string
val pp_status : Format.formatter -> site_status -> unit
val pp_site : Format.formatter -> site_health -> unit
val pp : Format.formatter -> t -> unit
