(** The health report a fault-aware consolidation returns alongside its
    merged entries.

    Accounting invariant: every input record known to the federation is
    exactly one of delivered, quarantined, or stranded at a skipped site —
    [delivered + quarantined + skipped_entries = total] — and
    [completeness = delivered / total].  Coverage computed over a partial
    trail must be labelled a lower bound carrying this fraction.

    A [Stale] site was served from the durable archive while its live
    fetch failed: archived records count as delivered, the lag as
    stranded.  Per-site durability state (archive shard health, site-WAL
    recovery) rides along: while any site is {!site_durably_degraded},
    its own totals are not trustworthy, so coverage must stay a lower
    bound even when record accounting looks complete. *)

type skip_reason =
  | Breaker_open
  | Fetch_failed of string  (** retries exhausted; the last failure *)

type site_status =
  | Delivered of { retries : int }
  | Stale of { archived : int; lag : int }
      (** served from the durable archive; [lag] records not yet archived *)
  | Skipped of skip_reason

type site_health = {
  site : string;
  status : site_status;
  entries : int;
  quarantined : int;
  skipped_entries : int;
  breaker : Breaker.state;
  trips : int;  (** lifetime breaker trips for this site *)
  shards : int;  (** archive shards held for this site *)
  shards_degraded : int;  (** of which torn or tampered *)
  site_degraded : bool;  (** site-WAL recovery lossy/tampered, replay pending *)
}

val make :
  ?shards:int ->
  ?shards_degraded:int ->
  ?site_degraded:bool ->
  site:string ->
  status:site_status ->
  entries:int ->
  quarantined:int ->
  skipped_entries:int ->
  breaker:Breaker.state ->
  trips:int ->
  unit ->
  site_health
(** Durability fields default to healthy (0 shards, not degraded). *)

type class_health = {
  cls : string;
  weight : int;
  admitted : int;  (** strict admission grants *)
  brownouts : int;  (** Partial-mode (lower-bound) grants *)
  shed : int;  (** typed, all-or-nothing rejections *)
}
(** Admission accounting for one budget class (see {!Admission}). *)

type t = {
  sites : site_health list;
  classes : class_health list;
      (** per-budget-class admission rows; [[]] when no admission
          controller is attached *)
  delivered : int;
  quarantined : int;
  skipped_entries : int;
  total : int;
  completeness : float;
  degraded_sites : int;  (** sites whose durable state is not trustworthy *)
  degraded_shards : int;  (** torn or tampered archive shards, all sites *)
}

val of_sites : ?classes:class_health list -> site_health list -> t
val complete : t -> bool

val site_completeness : site_health -> float
(** [entries / (entries + quarantined + skipped_entries)] for one site;
    a site with zero expected entries is vacuously complete (1.0), never
    NaN. *)

val durably_degraded : t -> bool
(** Any site durably degraded — coverage must stay a lower bound. *)

val site_ok : site_health -> bool
val site_durably_degraded : site_health -> bool
val skipped_sites : t -> site_health list
val skip_reason_to_string : skip_reason -> string
val pp_status : Format.formatter -> site_status -> unit
val pp_site : Format.formatter -> site_health -> unit
val pp_class : Format.formatter -> class_health -> unit
val pp : Format.formatter -> t -> unit
