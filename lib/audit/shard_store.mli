(** The consolidated archive, sharded by (site, time-range) behind a
    checksummed {!Durable.Manifest}.

    Every shard is one {!Durable.Log} holding one site's wire-encoded
    entries for one time bucket; the manifest is rewritten — after the
    shards sync — at every durability point.  Open-or-recover degrades
    per shard, never whole-store: a short shard is [Torn] (its verified
    prefix still serves), a [Tamper_detected] shard is quarantined (its
    catalogued records counted stranded), an unreadable manifest is
    rebuilt by scanning the shards, and a clean fetch supersedes a
    damaged archive by rebuilding that site's shards wholesale. *)

type status =
  | Healthy
  | Torn of { lost : int }
      (** records known lost (0 = tail dropped, count unknown) *)
  | Tampered of { offset : int }
      (** divergence offset; the shard is quarantined from the merge *)

type t

val status_to_string : status -> string

val default_bucket_ms : int
val create : ?bucket_ms:int -> ?seed:int -> unit -> t
val bucket_ms : t -> int
val bucket_of : t -> int -> int

val manifest_device : t -> Durable.Device.t

val devices : t -> (string * Durable.Device.t * Durable.Device.t) list
(** The surviving media, for crash simulation / reopen: per shard its
    name and (wal, snapshot) devices — the simulated directory listing. *)

val sites : t -> string list
val shard_count : t -> int
val total_records : t -> int
val shards_degraded : t -> int

val site_records : t -> site:string -> int
(** Records servable for [site] (tampered shards serve none). *)

val site_stranded : t -> site:string -> int
(** Records catalogued for [site] but unservable (tampered shards). *)

val site_degraded : t -> site:string -> bool
val site_high_water : t -> site:string -> int
(** Newest archived timestamp for [site]; [-1] with nothing archived. *)

type archive_summary = {
  appended : int;  (** fresh records archived this call *)
  rebuilt : bool;  (** the site's shards were rebuilt from the fetch *)
}

val archive_site : t -> site:string -> Hdb.Audit_schema.entry list -> archive_summary
(** Archive one site's fetched stream (time-sorted).  The prefix at or
    below the high-water mark must already be held record-for-record;
    any disagreement rebuilds the site's shards wholesale from the
    fetch. *)

val merged : t -> Hdb.Audit_schema.entry list
(** Tournament merge over all servable shard cursors, (time, site) order
    identical to the federation's direct merge. *)

val merged_site : t -> site:string -> Hdb.Audit_schema.entry list

val sync : t -> unit
(** Sync every shard, then rewrite the manifest — in that order, so the
    manifest never claims records the shards do not durably hold. *)

val checkpoint : t -> unit
(** Checkpoint every shard log and rewrite the manifest. *)

type shard_report = {
  r_name : string;
  r_site : string;
  r_status : status;
  r_records : int;
}

type open_report = {
  manifest_rebuilt : bool;  (** the manifest was damaged; rebuilt from scans *)
  adopted : int;  (** shard devices the manifest did not know *)
  lost : string list;  (** catalogued shards with no surviving device *)
  shard_reports : shard_report list;
}

val reopen :
  ?bucket_ms:int ->
  ?seed:int ->
  manifest:Durable.Device.t ->
  shards:(string * Durable.Device.t * Durable.Device.t) list ->
  unit ->
  t * open_report
(** Rebuild a store from surviving media.  A readable manifest anchors
    per-shard expectations (short shard → [Torn], catalogued-but-missing
    device → torn placeholder so the next fetch rebuilds the site); an
    unreadable manifest is rebuilt from the shard scans.  The manifest is
    rewritten to match what actually survived. *)

val shard_status : t -> site:string -> bucket:int -> status option

type shard_info = {
  name : string;
  site : string;
  bucket : int;
  records : int;
  stranded : int;
  status : status;
}

val shard_infos : t -> shard_info list

val pp : Format.formatter -> t -> unit
