(* Multi-tenant admission control.

   Budget classes hold token buckets over the governor's four resources,
   refilled on the simulated millisecond clock.  The refill boundary is
   CLOSED: a token owed at exactly-now is granted at that tick (integer
   credit = (carry + elapsed * rate) / 1000 reaches 1 exactly when the
   owed millisecond arrives), mirroring Retry.deadline_reached's [>=].

   Decisions never partially apply: grants debit the granted cost, sheds
   debit nothing.  Brownout (Partial-mode grant, results become honest
   lower bounds) is only offered to Query requests; Mutations are
   admitted whole or shed whole. *)

type principal = { tenant : string; user : string; session : string; request : string }

let principal ?user ?(session = "") ?(request = "") ~tenant () =
  let user = match user with Some u -> u | None -> tenant in
  { tenant; user; session; request }

type quota = { capacity : int; refill_per_s : int }

let quota ?refill_per_s ~capacity () =
  if capacity < 0 then invalid_arg "Admission.quota: negative capacity";
  let refill_per_s = match refill_per_s with Some r -> r | None -> capacity in
  if refill_per_s < 0 then invalid_arg "Admission.quota: negative refill";
  { capacity; refill_per_s }

type class_config = {
  weight : int;
  rows : quota option;
  tuples : quota option;
  ticks : quota option;
  wall_ms : quota option;
}

let class_config ?(weight = 1) ?rows ?tuples ?ticks ?wall_ms () =
  if weight < 1 then invalid_arg "Admission.class_config: weight < 1";
  { weight; rows; tuples; ticks; wall_ms }

type cost = { c_rows : int; c_tuples : int; c_ticks : int; c_wall_ms : int }

let cost ?(rows = 0) ?(tuples = 0) ?(ticks = 0) ?(wall_ms = 0) () =
  if rows < 0 || tuples < 0 || ticks < 0 || wall_ms < 0 then
    invalid_arg "Admission.cost: negative component";
  { c_rows = rows; c_tuples = tuples; c_ticks = ticks; c_wall_ms = wall_ms }

let cost_scalar c = max 1 (c.c_rows + c.c_tuples + c.c_ticks)

type kind = Mutation | Query

type grant = {
  g_class : string;
  g_mode : Relational.Budget.mode;
  g_limits : Relational.Budget.limits;
}

type rejection = {
  r_tenant : string;
  r_class : string;
  r_resource : Relational.Errors.resource;
  retry_after_ms : int option;
}

type decision = Admitted of grant | Brownout of grant | Rejected of rejection

exception Admission_rejected of rejection

let rejection_to_string r =
  Printf.sprintf "admission rejected: tenant %s (class %s) over %s budget%s" r.r_tenant
    r.r_class
    (match r.r_resource with
    | Relational.Errors.Rows -> "row"
    | Relational.Errors.Tuples -> "tuple"
    | Relational.Errors.Time -> "time")
    (match r.retry_after_ms with
    | Some ms -> Printf.sprintf ", retry after %dms" ms
    | None -> ", not retryable")

type pressure = { wal_backlog : int; degraded_shards : int; open_breakers : int }

let no_pressure = { wal_backlog = 0; degraded_shards = 0; open_breakers = 0 }

(* Un-synced WAL records tolerated before the backlog counts as a
   pressure signal. *)
let wal_backlog_threshold = 64

type class_stats = {
  cls : string;
  weight : int;
  admitted : int;
  brownouts : int;
  shed : int;
}

(* The four metered resources, in binding-report order. *)
type res = R_rows | R_tuples | R_ticks | R_wall

let all_res = [ R_rows; R_tuples; R_ticks; R_wall ]

let errors_resource = function
  | R_rows -> Relational.Errors.Rows
  | R_tuples -> Relational.Errors.Tuples
  | R_ticks | R_wall -> Relational.Errors.Time

let cost_of r c =
  match r with
  | R_rows -> c.c_rows
  | R_tuples -> c.c_tuples
  | R_ticks -> c.c_ticks
  | R_wall -> c.c_wall_ms

let quota_of r (cfg : class_config) =
  match r with
  | R_rows -> cfg.rows
  | R_tuples -> cfg.tuples
  | R_ticks -> cfg.ticks
  | R_wall -> cfg.wall_ms

type bucket = {
  q : quota;
  mutable tokens : int; (* may go negative: settlement debt *)
  mutable carry : int; (* refill numerator remainder, < 1000 *)
  mutable last : int; (* clock reading of the last refill *)
}

type cls = {
  name : string;
  mutable config : class_config;
  mutable buckets : (res * bucket) list; (* only metered resources *)
  mutable deficit : int; (* DRR deficit, in cost_scalar units *)
  mutable n_admitted : int;
  mutable n_brownouts : int;
  mutable n_shed : int;
}

type t = {
  mutable order : cls list; (* registration order *)
  by_name : (string, cls) Hashtbl.t;
  tenants : (string, string) Hashtbl.t;
  default_class : string;
  mutable pressure : pressure;
}

let buckets_of config ~now =
  List.filter_map
    (fun r ->
      match quota_of r config with
      | None -> None
      | Some q -> Some (r, { q; tokens = q.capacity; carry = 0; last = now }))
    all_res

let make_class ~now name config =
  { name;
    config;
    buckets = buckets_of config ~now;
    deficit = 0;
    n_admitted = 0;
    n_brownouts = 0;
    n_shed = 0;
  }

let create ?(default_class = "standard") ?(now = 0) classes =
  let t =
    { order = [];
      by_name = Hashtbl.create 8;
      tenants = Hashtbl.create 16;
      default_class;
      pressure = no_pressure;
    }
  in
  let add name config =
    if Hashtbl.mem t.by_name name then invalid_arg "Admission.create: duplicate class";
    let c = make_class ~now name config in
    Hashtbl.replace t.by_name name c;
    t.order <- t.order @ [ c ]
  in
  List.iter (fun (name, config) -> add name config) classes;
  if not (Hashtbl.mem t.by_name default_class) then add default_class (class_config ());
  t

let set_class t name config =
  match Hashtbl.find_opt t.by_name name with
  | None ->
      let c = make_class ~now:0 name config in
      Hashtbl.replace t.by_name name c;
      t.order <- t.order @ [ c ]
  | Some c ->
      (* Preserve bucket levels where the resource stays metered, clamped
         to the new capacity; counters and deficit survive. *)
      let old = c.buckets in
      c.config <- config;
      c.buckets <-
        List.filter_map
          (fun r ->
            match quota_of r config with
            | None -> None
            | Some q ->
                let b =
                  match List.assoc_opt r old with
                  | Some ob ->
                      { q; tokens = min q.capacity ob.tokens; carry = ob.carry; last = ob.last }
                  | None -> { q; tokens = q.capacity; carry = 0; last = 0 }
                in
                Some (r, b))
          all_res

let assign t ~tenant name =
  if not (Hashtbl.mem t.by_name name) then
    invalid_arg (Printf.sprintf "Admission.assign: unknown class %s" name);
  Hashtbl.replace t.tenants tenant name

let class_of t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with Some c -> c | None -> t.default_class

let classes t = List.map (fun c -> (c.name, c.config)) t.order

let cls_of_tenant t tenant =
  match Hashtbl.find_opt t.by_name (class_of t ~tenant) with
  | Some c -> c
  | None -> assert false (* default class always registered *)

let set_pressure t p = t.pressure <- p
let pressure t = t.pressure

let pressure_level t =
  (if t.pressure.wal_backlog >= wal_backlog_threshold then 1 else 0)
  + (if t.pressure.degraded_shards > 0 then 1 else 0)
  + if t.pressure.open_breakers > 0 then 1 else 0

(* Closed-boundary refill: the credit owed at exactly [now] is granted at
   [now].  The carry resets when the bucket tops out, so a full bucket
   does not bank fractional credit. *)
let refill (b : bucket) ~now =
  if now > b.last then begin
    let elapsed = now - b.last in
    b.last <- now;
    let num = b.carry + (elapsed * b.q.refill_per_s) in
    b.tokens <- b.tokens + (num / 1000);
    b.carry <- num mod 1000;
    if b.tokens >= b.q.capacity then begin
      b.tokens <- b.q.capacity;
      b.carry <- 0
    end
  end

let refill_all c ~now = List.iter (fun (_, b) -> refill b ~now) c.buckets

(* Milliseconds until the bucket can cover [need] tokens; None when it
   never can (capacity or rate too small). *)
let ms_until (b : bucket) ~need =
  if b.tokens >= need then Some 0
  else if need > b.q.capacity || b.q.refill_per_s <= 0 then None
  else
    let missing = need - b.tokens in
    let num = (missing * 1000) - b.carry in
    Some ((num + b.q.refill_per_s - 1) / b.q.refill_per_s)

let debit c (g : cost) =
  List.iter (fun (r, b) -> b.tokens <- b.tokens - cost_of r g) c.buckets

let limits_of_grant (g : cost) : Relational.Budget.limits =
  let opt n = if n > 0 then Some n else None in
  { Relational.Budget.max_rows = opt g.c_rows;
    max_tuples = opt g.c_tuples;
    deadline = opt g.c_ticks;
    max_wall_ms = opt g.c_wall_ms;
  }

let ceil_half n = (n + 1) / 2

let admit t ~now ~kind p (c : cost) =
  let cl = cls_of_tenant t p.tenant in
  refill_all cl ~now;
  let level = pressure_level t in
  let covers mult =
    List.for_all
      (fun (r, b) ->
        let need = cost_of r c in
        need = 0 || b.tokens >= need * mult)
      cl.buckets
  in
  let strict_ok = covers (1 + level) in
  (* At level 0 this equals [strict_ok], so the full-grant brownout
     below can only fire when the pressure bar alone failed. *)
  let plain_ok = covers 1 in
  if strict_ok then begin
    debit cl c;
    cl.n_admitted <- cl.n_admitted + 1;
    Admitted
      { g_class = cl.name; g_mode = Relational.Budget.Strict; g_limits = limits_of_grant c }
  end
  else if kind = Query && plain_ok then begin
    (* Affordable at face value; only the pressure bar failed.  Run it,
       but in Partial mode so the result is an honest lower bound. *)
    debit cl c;
    cl.n_brownouts <- cl.n_brownouts + 1;
    Brownout
      { g_class = cl.name; g_mode = Relational.Budget.Partial; g_limits = limits_of_grant c }
  end
  else if
    kind = Query
    && List.for_all
         (fun (r, b) ->
           let need = cost_of r c in
           need = 0 || b.tokens >= ceil_half need)
         cl.buckets
  then begin
    (* The class can cover at least half of every requested resource:
       brown out to the affordable grant instead of shedding. *)
    let granted =
      { c_rows = c.c_rows;
        c_tuples = c.c_tuples;
        c_ticks = c.c_ticks;
        c_wall_ms = c.c_wall_ms;
      }
    in
    let granted =
      List.fold_left
        (fun (g : cost) (r, b) ->
          let need = cost_of r c in
          if need = 0 || b.tokens >= need then g
          else
            match r with
            | R_rows -> { g with c_rows = b.tokens }
            | R_tuples -> { g with c_tuples = b.tokens }
            | R_ticks -> { g with c_ticks = b.tokens }
            | R_wall -> { g with c_wall_ms = b.tokens })
        granted cl.buckets
    in
    debit cl granted;
    cl.n_brownouts <- cl.n_brownouts + 1;
    Brownout
      { g_class = cl.name;
        g_mode = Relational.Budget.Partial;
        g_limits = limits_of_grant granted;
      }
  end
  else begin
    (* Shed.  The hint targets the PLAIN cost: when only the pressure bar
       failed (a mutation under pressure), the plain cost is affordable
       now, so the earliest retry is the next tick — pressure is
       exogenous and may have cleared by then. *)
    let binding =
      List.find_opt (fun (r, b) -> b.tokens < cost_of r c) cl.buckets
    in
    let r_resource, retry_after_ms =
      match binding with
      | None -> (Relational.Errors.Time, Some 1)
      | Some (r, b) -> (errors_resource r, ms_until b ~need:(cost_of r c))
    in
    let retry_after_ms =
      (* Every binding resource must clear, not just the first. *)
      match retry_after_ms with
      | None -> None
      | Some ms ->
          List.fold_left
            (fun acc (r, b) ->
              match acc with
              | None -> None
              | Some best -> (
                  let need = cost_of r c in
                  if need = 0 || b.tokens >= need then acc
                  else
                    match ms_until b ~need with
                    | None -> None
                    | Some m -> Some (max best m)))
            (Some (max ms 1)) cl.buckets
    in
    cl.n_shed <- cl.n_shed + 1;
    Rejected { r_tenant = p.tenant; r_class = cl.name; r_resource; retry_after_ms }
  end

let settle t ~now p ~declared (stats : Relational.Errors.budget_stats) =
  let cl = cls_of_tenant t p.tenant in
  refill_all cl ~now;
  let extra r =
    let actual =
      match r with
      | R_rows -> stats.Relational.Errors.rows_out
      | R_tuples -> stats.Relational.Errors.tuples
      | R_ticks -> stats.Relational.Errors.ticks
      | R_wall -> 0
    in
    max 0 (actual - cost_of r declared)
  in
  List.iter
    (fun (r, b) ->
      let e = extra r in
      if e > 0 then
        (* Bounded debt: settlement can push the bucket negative, which
           delays the class's next admit, but never without bound. *)
        b.tokens <- max (-(4 * max 1 b.q.capacity)) (b.tokens - e))
    cl.buckets

(* Deficit round-robin over per-class FIFO queues.  [quantum] is the
   scalar credit a weight-1 class earns per round. *)
let drr_quantum = 8

let drain t ~now ?serve_limit reqs =
  let queues = Hashtbl.create 8 in
  List.iter
    (fun ((p, _, _) as req) ->
      let cl = cls_of_tenant t p.tenant in
      let q =
        match Hashtbl.find_opt queues cl.name with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace queues cl.name q;
            q
      in
      Queue.add req q)
    reqs;
  let order = List.filter (fun c -> Hashtbl.mem queues c.name) t.order in
  let remaining = ref (match serve_limit with None -> max_int | Some s -> max 0 s) in
  let out = ref [] in
  let emit p d = out := (p, d) :: !out in
  let shed_overload cl (p : principal) =
    cl.n_shed <- cl.n_shed + 1;
    emit p
      (Rejected
         { r_tenant = p.tenant;
           r_class = cl.name;
           r_resource = Relational.Errors.Time;
           retry_after_ms = Some 1;
         })
  in
  let starved = Hashtbl.create 8 in
  let pending () =
    List.exists (fun cl -> not (Queue.is_empty (Hashtbl.find queues cl.name))) order
  in
  while pending () do
    if !remaining <= 0 then
      (* Server capacity exhausted: shed everything left, keeping the
         deficits — these classes are still backlogged. *)
      List.iter
        (fun cl ->
          let q = Hashtbl.find queues cl.name in
          while not (Queue.is_empty q) do
            let p, _, _ = Queue.pop q in
            Hashtbl.replace starved cl.name true;
            shed_overload cl p
          done)
        order
    else
      List.iter
        (fun cl ->
          let q = Hashtbl.find queues cl.name in
          if not (Queue.is_empty q) then begin
            cl.deficit <- cl.deficit + (cl.config.weight * drr_quantum);
            let continue = ref true in
            while !continue && not (Queue.is_empty q) do
              let _, c, _ = Queue.peek q in
              let scalar = cost_scalar c in
              if scalar > cl.deficit then continue := false
              else begin
                let p, c, k = Queue.pop q in
                if scalar > !remaining then begin
                  Hashtbl.replace starved cl.name true;
                  shed_overload cl p
                end
                else
                  let d = admit t ~now ~kind:k p c in
                  (match d with
                  | Admitted _ | Brownout _ ->
                      cl.deficit <- cl.deficit - scalar;
                      remaining := !remaining - scalar
                  | Rejected _ -> ());
                  emit p d
              end
            done;
            if Queue.is_empty q && not (Hashtbl.mem starved cl.name) then cl.deficit <- 0
          end)
        order
  done;
  List.rev !out

let stats_of_cls c =
  { cls = c.name;
    weight = c.config.weight;
    admitted = c.n_admitted;
    brownouts = c.n_brownouts;
    shed = c.n_shed;
  }

let stats t = List.map stats_of_cls t.order

let stats_of_class t name =
  Option.map stats_of_cls (Hashtbl.find_opt t.by_name name)

let reset_counters t =
  List.iter
    (fun c ->
      c.n_admitted <- 0;
      c.n_brownouts <- 0;
      c.n_shed <- 0)
    t.order
