(** Per-site circuit breaker so a dead site cannot stall consolidation.

    [Closed] counts consecutive failures; at [failure_threshold] the breaker
    trips [Open] and the site is skipped until [cooldown] simulated
    milliseconds elapse, after which [Half_open] admits exactly {e one}
    probe at a time — a second [allow] before the probe's outcome is
    recorded is refused, so concurrent callers cannot stampede a
    barely-recovered site.  [success_threshold] consecutive probe
    successes close it, any failure re-opens.  Time is the simulated
    clock the retry layer advances, so breaker trajectories replay
    deterministically. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;
  cooldown : int;
  success_threshold : int;
}

val default_config : config

type t

val create : ?config:config -> unit -> t
val state : t -> state
val config : t -> config

val trips : t -> int
(** Lifetime count of trips to [Open] — how often this site has flapped. *)

val allow : t -> now:int -> bool
(** May a request proceed at simulated time [now]?  [Open] transitions to
    [Half_open] here once the cooldown has elapsed. *)

val record_success : t -> unit
val record_failure : t -> now:int -> unit
val pp_state : Format.formatter -> state -> unit
val pp : Format.formatter -> t -> unit
