(* Schema mappings for federating heterogeneous site logs.  A legacy site
   may name columns differently ("role" for "authorized"), encode ops and
   statuses with its own tokens ("GRANTED"/"BTG") and use local role or
   category synonyms ("RN" for "nurse").  A mapping normalises one raw
   record — an (attribute, value) association — into the standard entry. *)

type t = {
  (* foreign column name -> standard attribute *)
  column_aliases : (string * string) list;
  (* (standard attribute, foreign value) -> standard value *)
  value_synonyms : ((string * string) * string) list;
}

let identity = { column_aliases = []; value_synonyms = [] }

(* Synonym keys are normalised the same way [apply] normalises raw input —
   lowercased — so ("RN" -> "nurse") matches the raw value "RN" even though
   raw values are lowercased before lookup. *)
let create ?(column_aliases = []) ?(value_synonyms = []) () =
  { column_aliases =
      List.map (fun (f, s) -> (String.lowercase_ascii f, s)) column_aliases;
    value_synonyms =
      List.map
        (fun ((attr, foreign), standard) ->
          ((String.lowercase_ascii attr, String.lowercase_ascii foreign), standard))
        value_synonyms;
  }

let standard_attr t foreign =
  let foreign = String.lowercase_ascii foreign in
  match List.assoc_opt foreign t.column_aliases with
  | Some standard -> standard
  | None -> foreign

let standard_value t ~attr value =
  match List.assoc_opt (String.lowercase_ascii attr, value) t.value_synonyms with
  | Some standard -> standard
  | None -> value

exception Unmappable of string

let lookup normalized attr =
  match List.assoc_opt attr normalized with
  | Some v -> v
  | None -> raise (Unmappable (Printf.sprintf "missing attribute %s" attr))

let bool_like what = function
  | "1" | "true" | "yes" | "allow" | "granted" | "regular" -> 1
  | "0" | "false" | "no" | "deny" | "denied" | "exception" | "btg" -> 0
  | v -> raise (Unmappable (Printf.sprintf "cannot read %s value %S" what v))

(* [apply t raw] normalises a raw record into a standard audit entry.
   @raise Unmappable when a required attribute is absent or unreadable. *)
let apply t (raw : (string * string) list) : Hdb.Audit_schema.entry =
  let normalized =
    List.map
      (fun (foreign, value) ->
        let attr = standard_attr t foreign in
        (attr, standard_value t ~attr (String.lowercase_ascii value)))
      raw
  in
  let time =
    let v = lookup normalized Vocabulary.Audit_attrs.time in
    match int_of_string_opt v with
    | Some time -> time
    | None -> raise (Unmappable (Printf.sprintf "cannot read time value %S" v))
  in
  Hdb.Audit_schema.entry ~time
    ~op:(Hdb.Audit_schema.op_of_int (bool_like "op" (lookup normalized Vocabulary.Audit_attrs.op)))
    ~user:(lookup normalized Vocabulary.Audit_attrs.user)
    ~data:(lookup normalized Vocabulary.Audit_attrs.data)
    ~purpose:(lookup normalized Vocabulary.Audit_attrs.purpose)
    ~authorized:(lookup normalized Vocabulary.Audit_attrs.authorized)
    ~status:
      (Hdb.Audit_schema.status_of_int
         (bool_like "status" (lookup normalized Vocabulary.Audit_attrs.status)))
