(* Per-site circuit breaker: a dead site must not stall consolidation.

     Closed     -- normal; consecutive failures counted
     Open       -- site skipped until the cooldown elapses
     Half_open  -- cooldown over; exactly ONE probe in flight at a time —
                   a second [allow] before the probe's outcome is recorded
                   is refused, so concurrent callers cannot stampede a
                   barely-recovered site; [success_threshold] consecutive
                   probe successes close, any failure re-opens

   Time is the same simulated millisecond clock the retry layer advances,
   so breaker trajectories replay deterministically with the fault
   schedule. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int; (* consecutive failures that trip Closed -> Open *)
  cooldown : int; (* ms in Open before probing *)
  success_threshold : int; (* consecutive probe successes to close again *)
}

let default_config = { failure_threshold = 3; cooldown = 5_000; success_threshold = 1 }

type t = {
  config : config;
  mutable state : state;
  mutable failures : int; (* consecutive, while Closed *)
  mutable successes : int; (* consecutive, while Half_open *)
  mutable opened_at : int; (* clock value of the last trip *)
  mutable trips : int; (* lifetime Closed/Half_open -> Open transitions *)
  mutable probing : bool; (* Half_open: the single admitted probe is in flight *)
}

let create ?(config = default_config) () =
  { config;
    state = Closed;
    failures = 0;
    successes = 0;
    opened_at = 0;
    trips = 0;
    probing = false;
  }

let state t = t.state

let config t = t.config

let trips t = t.trips

(* May a request proceed at simulated time [now]?  Open transitions to
   Half_open here once the cooldown has elapsed — that admission IS the
   single probe, and further requests are refused until its outcome is
   recorded. *)
let allow t ~now =
  match t.state with
  | Closed -> true
  | Half_open ->
    if t.probing then false
    else begin
      t.probing <- true;
      true
    end
  | Open ->
    if now - t.opened_at >= t.config.cooldown then begin
      t.state <- Half_open;
      t.successes <- 0;
      t.probing <- true;
      true
    end
    else false

let trip t ~now =
  t.state <- Open;
  t.opened_at <- now;
  t.failures <- 0;
  t.successes <- 0;
  t.probing <- false;
  t.trips <- t.trips + 1

let record_success t =
  match t.state with
  | Closed -> t.failures <- 0
  | Open -> () (* success without permission: ignore *)
  | Half_open ->
    t.probing <- false;
    t.successes <- t.successes + 1;
    if t.successes >= t.config.success_threshold then begin
      t.state <- Closed;
      t.failures <- 0;
      t.successes <- 0
    end

let record_failure t ~now =
  match t.state with
  | Closed ->
    t.failures <- t.failures + 1;
    if t.failures >= t.config.failure_threshold then trip t ~now
  | Half_open -> trip t ~now
  | Open -> ()

let pp_state ppf = function
  | Closed -> Fmt.string ppf "closed"
  | Open -> Fmt.string ppf "open"
  | Half_open -> Fmt.string ppf "half-open"

let pp ppf t =
  Fmt.pf ppf "%a (failures %d, successes %d, trips %d)" pp_state t.state t.failures
    t.successes t.trips
