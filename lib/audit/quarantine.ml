(* Holding area for audit records the federation could not take in: raw
   records a site's mapping rejected (Mapping.Unmappable) and records that
   arrived corrupted from a remote fetch.  Each item keeps the offending raw
   record, its site-local sequence number and a reason, so the record can be
   reprocessed — after a mapping fix, or a clean re-fetch — without losing
   the audit trail's accounting: every input record is either ingested,
   quarantined, or at a skipped site. *)

type item = {
  site : string;
  seq : int; (* site-local sequence number; the exactly-once key *)
  raw : (string * string) list;
  reason : string;
}

type t = {
  (* (site, seq) -> item; insertion order retained for reporting *)
  index : (string * int, item) Hashtbl.t;
  mutable order : (string * int) list; (* newest first *)
  (* Write-ahead durability (optional): mutations are framed as op records
     into the log before the tables change, so quarantined items — and
     their resolution — survive a restart. *)
  mutable log : Durable.Log.t option;
}

(* Op record codec.  One byte of opcode, then length-prefixed strings and
   u64 sequence numbers:

     'A' [seq : u64] [site] [reason] [npairs : u32] ([key] [value]) xn
     'R' [seq : u64] [site]
     'C'

   A checkpoint image is the live items re-encoded as 'A' ops, so replay
   needs only this one decoder. *)

let add_str buffer s =
  Durable.Frame.put_u32 buffer (String.length s);
  Buffer.add_string buffer s

let encode_add ~site ~seq ~raw ~reason =
  let buffer = Buffer.create 64 in
  Buffer.add_char buffer 'A';
  Durable.Frame.put_u64 buffer seq;
  add_str buffer site;
  add_str buffer reason;
  Durable.Frame.put_u32 buffer (List.length raw);
  List.iter
    (fun (k, v) ->
      add_str buffer k;
      add_str buffer v)
    raw;
  Buffer.contents buffer

let encode_remove ~site ~seq =
  let buffer = Buffer.create 24 in
  Buffer.add_char buffer 'R';
  Durable.Frame.put_u64 buffer seq;
  add_str buffer site;
  Buffer.contents buffer

let encode_clear = "C"

type op =
  | Op_add of item
  | Op_remove of string * int
  | Op_clear

let decode_op s =
  let n = String.length s in
  let pos = ref 0 in
  let ( let* ) = Option.bind in
  let u64 () =
    if !pos + 8 > n then None
    else begin
      let v = Durable.Frame.get_u64 s !pos in
      pos := !pos + 8;
      if v < 0 then None else Some v
    end
  in
  let str () =
    if !pos + 4 > n then None
    else begin
      let len = Durable.Frame.get_u32 s !pos in
      pos := !pos + 4;
      if len < 0 || !pos + len > n then None
      else begin
        let v = String.sub s !pos len in
        pos := !pos + len;
        Some v
      end
    end
  in
  if n = 0 then None
  else
    match s.[0] with
    | 'C' -> if n = 1 then Some Op_clear else None
    | 'R' ->
      pos := 1;
      let* seq = u64 () in
      let* site = str () in
      if !pos <> n then None else Some (Op_remove (site, seq))
    | 'A' ->
      pos := 1;
      let* seq = u64 () in
      let* site = str () in
      let* reason = str () in
      let* npairs =
        if !pos + 4 > n then None
        else begin
          let v = Durable.Frame.get_u32 s !pos in
          pos := !pos + 4;
          if v < 0 then None else Some v
        end
      in
      let rec pairs acc k =
        if k = 0 then Some (List.rev acc)
        else
          let* key = str () in
          let* value = str () in
          pairs ((key, value) :: acc) (k - 1)
      in
      let* raw = pairs [] npairs in
      if !pos <> n then None else Some (Op_add { site; seq; raw; reason })
    | _ -> None

let create () = { index = Hashtbl.create 16; order = []; log = None }

let length t = Hashtbl.length t.index

let mem t ~site ~seq = Hashtbl.mem t.index (site, seq)

let log_op t payload =
  match t.log with
  | Some log -> ignore (Durable.Log.append log payload)
  | None -> ()

(* Table updates alone — shared by the public mutators (which log first)
   and recovery replay (whose ops are already in the log). *)
let add_mem t ~site ~seq ~raw ~reason =
  let key = (site, seq) in
  if not (Hashtbl.mem t.index key) then t.order <- key :: t.order;
  Hashtbl.replace t.index key { site; seq; raw; reason }

let remove_mem t ~site ~seq =
  let key = (site, seq) in
  if Hashtbl.mem t.index key then begin
    Hashtbl.remove t.index key;
    t.order <- List.filter (fun k -> k <> key) t.order
  end

let clear_mem t =
  Hashtbl.reset t.index;
  t.order <- []

(* Idempotent: re-adding a (site, seq) already held replaces the reason but
   does not duplicate the item. *)
let add t ~site ~seq ~raw ~reason =
  log_op t (encode_add ~site ~seq ~raw ~reason);
  add_mem t ~site ~seq ~raw ~reason

let remove t ~site ~seq =
  if mem t ~site ~seq then begin
    log_op t (encode_remove ~site ~seq);
    remove_mem t ~site ~seq
  end

let items t =
  List.rev_map (fun key -> Hashtbl.find t.index key) t.order

let site_items t ~site =
  List.filter (fun item -> String.equal item.site site) (items t)

let site_count t ~site = List.length (site_items t ~site)

(* Remove and return every item of [site] — the reprocessing entry point:
   the caller re-applies the (possibly fixed) mapping and re-adds whatever
   still fails. *)
let take_site t ~site =
  let taken = site_items t ~site in
  List.iter (fun item -> remove t ~site ~seq:item.seq) taken;
  taken

let clear t =
  if length t > 0 || t.log <> None then log_op t encode_clear;
  clear_mem t

(* --- durability --- *)

let log t = t.log

let attach_log t log = t.log <- Some log

let sync t = Option.iter Durable.Log.sync t.log

(* Replay a recovered op log into [t] (assumed fresh), then attach it so
   new mutations are write-ahead.  Ops that fail to decode are counted —
   they passed their CRC, so a non-zero count means a codec mismatch. *)
let restore t log =
  let recovery = Durable.Log.open_or_recover log in
  let undecodable = ref 0 in
  List.iter
    (fun payload ->
      match decode_op payload with
      | Some (Op_add { site; seq; raw; reason }) -> add_mem t ~site ~seq ~raw ~reason
      | Some (Op_remove (site, seq)) -> remove_mem t ~site ~seq
      | Some Op_clear -> clear_mem t
      | None -> incr undecodable)
    recovery.Durable.Recovery.entries;
  t.log <- Some log;
  (recovery, !undecodable)

let open_durable log =
  let t = create () in
  let recovery, undecodable = restore t log in
  (t, recovery, undecodable)

(* Compact the op history into a snapshot of the live items (each re-encoded
   as an 'A' op, so replay reuses the one decoder) and truncate the WAL. *)
let checkpoint t =
  match t.log with
  | None -> ()
  | Some durable_log ->
    let entries =
      List.map
        (fun { site; seq; raw; reason } -> encode_add ~site ~seq ~raw ~reason)
        (items t)
    in
    Durable.Log.checkpoint durable_log ~entries

(* Keep the op log bounded: compact automatically once it exceeds the
   policy.  Mutations are write-ahead (op logged, then applied), so at
   trigger time the live items are exactly the state the logged ops
   produce. *)
let enable_auto_checkpoint ?(policy = Durable.Log.checkpoint_every ~records:1024 ()) t =
  match t.log with
  | None -> ()
  | Some durable_log ->
    Durable.Log.set_auto_checkpoint durable_log policy (fun () ->
        List.map
          (fun { site; seq; raw; reason } -> encode_add ~site ~seq ~raw ~reason)
          (items t))

let pp_item ppf item =
  Fmt.pf ppf "%s#%d: %s" item.site item.seq item.reason

let pp ppf t =
  match items t with
  | [] -> Fmt.pf ppf "quarantine empty@."
  | items ->
    Fmt.pf ppf "quarantine (%d):@." (List.length items);
    List.iter (fun item -> Fmt.pf ppf "  %a@." pp_item item) items
