(* Holding area for audit records the federation could not take in: raw
   records a site's mapping rejected (Mapping.Unmappable) and records that
   arrived corrupted from a remote fetch.  Each item keeps the offending raw
   record, its site-local sequence number and a reason, so the record can be
   reprocessed — after a mapping fix, or a clean re-fetch — without losing
   the audit trail's accounting: every input record is either ingested,
   quarantined, or at a skipped site. *)

type item = {
  site : string;
  seq : int; (* site-local sequence number; the exactly-once key *)
  raw : (string * string) list;
  reason : string;
}

type t = {
  (* (site, seq) -> item; insertion order retained for reporting *)
  index : (string * int, item) Hashtbl.t;
  mutable order : (string * int) list; (* newest first *)
}

let create () = { index = Hashtbl.create 16; order = [] }

let length t = Hashtbl.length t.index

let mem t ~site ~seq = Hashtbl.mem t.index (site, seq)

(* Idempotent: re-adding a (site, seq) already held replaces the reason but
   does not duplicate the item. *)
let add t ~site ~seq ~raw ~reason =
  let key = (site, seq) in
  if not (Hashtbl.mem t.index key) then t.order <- key :: t.order;
  Hashtbl.replace t.index key { site; seq; raw; reason }

let remove t ~site ~seq =
  let key = (site, seq) in
  if Hashtbl.mem t.index key then begin
    Hashtbl.remove t.index key;
    t.order <- List.filter (fun k -> k <> key) t.order
  end

let items t =
  List.rev_map (fun key -> Hashtbl.find t.index key) t.order

let site_items t ~site =
  List.filter (fun item -> String.equal item.site site) (items t)

let site_count t ~site = List.length (site_items t ~site)

(* Remove and return every item of [site] — the reprocessing entry point:
   the caller re-applies the (possibly fixed) mapping and re-adds whatever
   still fails. *)
let take_site t ~site =
  let taken = site_items t ~site in
  List.iter (fun item -> remove t ~site ~seq:item.seq) taken;
  taken

let clear t =
  Hashtbl.reset t.index;
  t.order <- []

let pp_item ppf item =
  Fmt.pf ppf "%s#%d: %s" item.site item.seq item.reason

let pp ppf t =
  match items t with
  | [] -> Fmt.pf ppf "quarantine empty@."
  | items ->
    Fmt.pf ppf "quarantine (%d):@." (List.length items);
    List.iter (fun item -> Fmt.pf ppf "  %a@." pp_item item) items
