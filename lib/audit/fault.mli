(** Deterministic fault injection around a {!Site}.

    A wrapped site can be unavailable (every fetch fails until healed),
    slow (an attempt blows its timeout), transiently flaky (a retry may
    succeed) or corrupting (individual records arrive damaged and must be
    quarantined).  Every decision draws from a {!Splitmix} stream owned by
    the wrapper, so a given seed replays the exact failure schedule;
    [heal] restores the site, which is what lets the convergence oracle
    compare a degraded run against its fault-free baseline. *)

type failure =
  | Unavailable  (** persistent outage until healed *)
  | Timed_out  (** this attempt exceeded its deadline *)
  | Transient  (** flaky attempt; retrying may succeed *)

val failure_to_string : failure -> string

type config = {
  p_unavailable : float;  (** site down for the whole run, decided at wrap *)
  p_timeout : float;  (** per attempt *)
  p_flaky : float;  (** per attempt *)
  p_corrupt : float;  (** per record on a successful fetch *)
  latency : int;  (** simulated ms per successful fetch *)
  timeout_cost : int;  (** simulated ms burned by a timed-out attempt *)
}

val no_faults : config
val default_config : config

type t

val wrap : ?config:config -> seed:int -> Site.t -> t
(** The persistent-outage draw happens here, once, from the seed. *)

val site : t -> Site.t

val reseat : t -> Site.t -> unit
(** Point the wrapper at a replacement — e.g. a site rebuilt from its WAL
    after a crash.  The PRNG keeps its position, so a reseat does not
    disturb the fault schedule. *)

val config : t -> config
val is_down : t -> bool

val heal : t -> unit
(** Clear every injected fault; the PRNG keeps its position so healing one
    site does not disturb the others' schedules. *)

val take_down : t -> unit
(** Force the persistent outage on — e.g. to script a breaker trajectory. *)

val restore : t -> unit

type fetched = {
  delivered : Hdb.Audit_schema.entry list;  (** clean records, store order *)
  corrupted : (int * (string * string) list * string) list;
      (** (seq, garbled raw, reason) for records damaged in transit *)
}

val fetch : t -> clock:int ref -> (fetched, failure) result
(** One fetch attempt at the simulated clock.  The site keeps the originals
    of corrupted records, so a later clean fetch recovers them. *)
