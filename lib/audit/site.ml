(* One audited system in the clinical environment: a named audit store plus
   the mapping that normalises its raw records.  A modern HDB-instrumented
   site ingests standard entries directly; a legacy site ingests raw
   records through its mapping.

   Raw ingestion is atomic per record: a malformed record is routed to the
   site's quarantine (with its raw form and the mapping failure) instead of
   aborting the batch mid-way, and every raw record carries a site-local
   sequence number so re-submitted batches are idempotent — a record is
   ingested exactly once no matter how many times its batch is retried. *)

type t = {
  name : string;
  store : Hdb.Audit_store.t;
  mutable mapping : Mapping.t;
  quarantine : Quarantine.t;
  (* seqs successfully ingested; the exactly-once ledger *)
  processed : (int, unit) Hashtbl.t;
  mutable next_seq : int;
}

(* [quarantine] lets a restarted site adopt a quarantine recovered from a
   durable op log (its items keep their original seqs, so reprocessing
   after the restart composes with batch retries exactly as before the
   crash); the default is a fresh empty one. *)
let create ?(mapping = Mapping.identity) ?quarantine ~name () =
  { name;
    store = Hdb.Audit_store.create ();
    mapping;
    quarantine = (match quarantine with Some q -> q | None -> Quarantine.create ());
    processed = Hashtbl.create 64;
    next_seq = 0;
  }

(* Attach an existing store (e.g. an enforcement logger's). *)
let of_store ?(mapping = Mapping.identity) ?quarantine ~name store =
  { name;
    store;
    mapping;
    quarantine = (match quarantine with Some q -> q | None -> Quarantine.create ());
    processed = Hashtbl.create 64;
    next_seq = 0;
  }

let name t = t.name

let store t = t.store

let mapping t = t.mapping

(* e.g. after a privacy officer fixes a synonym; quarantined records can
   then be pushed back through [reprocess_quarantined]. *)
let set_mapping t mapping = t.mapping <- mapping

let quarantine t = t.quarantine

let quarantined_count t = Quarantine.site_count t.quarantine ~site:t.name

let length t = Hdb.Audit_store.length t.store

let next_seq t = t.next_seq

let ingest_entry t entry = Hdb.Audit_store.append t.store entry

let ingest_entries t entries = List.iter (ingest_entry t) entries

(* @raise Mapping.Unmappable on malformed raw records. *)
let ingest_raw t raw = ingest_entry t (Mapping.apply t.mapping raw)

type ingest_summary = {
  ingested : int;
  quarantined : int;
  duplicates : int; (* seqs already ingested or already quarantined *)
}

let empty_summary = { ingested = 0; quarantined = 0; duplicates = 0 }

let summary_total s = s.ingested + s.quarantined + s.duplicates

(* One raw record at a known sequence number.  Atomic: either the record is
   ingested, or it lands in quarantine with the mapping failure — the store
   is never left half-updated, and a seq seen before is a no-op. *)
let ingest_raw_seq t ~seq raw summary =
  if Hashtbl.mem t.processed seq || Quarantine.mem t.quarantine ~site:t.name ~seq then
    { summary with duplicates = summary.duplicates + 1 }
  else
    match Mapping.apply t.mapping raw with
    | entry ->
      ingest_entry t entry;
      Hashtbl.replace t.processed seq ();
      { summary with ingested = summary.ingested + 1 }
    | exception Mapping.Unmappable reason ->
      Quarantine.add t.quarantine ~site:t.name ~seq ~raw ~reason;
      { summary with quarantined = summary.quarantined + 1 }

(* A batch whose records occupy seqs [first_seq, first_seq + length).  A
   retried batch re-sends the same [first_seq]; its already-processed
   records count as duplicates and are skipped. *)
let ingest_raw_batch ?first_seq t raws =
  let first = Option.value first_seq ~default:t.next_seq in
  t.next_seq <- max t.next_seq (first + List.length raws);
  let summary, _ =
    List.fold_left
      (fun (summary, seq) raw -> (ingest_raw_seq t ~seq raw summary, seq + 1))
      (empty_summary, first) raws
  in
  summary

(* Fresh records at the next sequence numbers; never raises — failures are
   quarantined per record. *)
let ingest_raw_all t raws = ingest_raw_batch t raws

(* Push the site's quarantined records back through the (possibly fixed)
   mapping; records that still fail return to quarantine.  Original seqs are
   kept, so reprocessing composes with batch retries without double
   ingestion. *)
let reprocess_quarantined t =
  let stuck = Quarantine.take_site t.quarantine ~site:t.name in
  List.fold_left
    (fun summary (item : Quarantine.item) ->
      ingest_raw_seq t ~seq:item.Quarantine.seq item.Quarantine.raw summary)
    empty_summary stuck

let entries t = Hdb.Audit_store.to_list t.store
