(* One audited system in the clinical environment: a named audit store plus
   the mapping that normalises its raw records.  A modern HDB-instrumented
   site ingests standard entries directly; a legacy site ingests raw
   records through its mapping.

   Raw ingestion is atomic per record: a malformed record is routed to the
   site's quarantine (with its raw form and the mapping failure) instead of
   aborting the batch mid-way, and every raw record carries a site-local
   sequence number so re-submitted batches are idempotent — a record is
   ingested exactly once no matter how many times its batch is retried.

   A site may additionally sit on its own {!Durable.Log}: every mutation —
   an accepted entry, a ledger mark, a quarantine add/remove, a sequence
   advance — is framed as an op record into the write-ahead log *before*
   the in-memory state changes, so the store, the exactly-once ledger and
   the in-flight quarantine all survive a site-local crash and replay
   locally instead of re-ingesting from the source.  The WAL is
   hash-chained (per {!Durable.Frame}), so recovery distinguishes a benign
   torn tail (records past the last sync lost; the site owes its feed a
   replay from [next_seq]) from interior tampering. *)

type t = {
  name : string;
  store : Hdb.Audit_store.t;
  mutable mapping : Mapping.t;
  quarantine : Quarantine.t;
  (* seqs successfully ingested; the exactly-once ledger *)
  processed : (int, unit) Hashtbl.t;
  mutable next_seq : int;
  (* Per-site write-ahead durability (optional). *)
  mutable wal : Durable.Log.t option;
  mutable recovery : Durable.Recovery.t option;
  mutable undecodable : int; (* recovered ops that no longer decode *)
  (* A lossy or tampered recovery leaves the site degraded until the
     feed acknowledges it has replayed the lost suffix. *)
  mutable replay_pending : bool;
  (* Tenant admission gate for the ingestion path (optional, shared
     across the federation). *)
  mutable admission : Admission.t option;
}

(* Op record codec.  One byte of opcode, then length-prefixed strings and
   u64 numbers:

     'E' [entry wire]                  entry accepted outside the ledger
     'S' [seq : u64] [entry wire]      entry accepted at seq (ledger mark)
     'P' [seq : u64]                   ledger mark alone (checkpoint image)
     'Q' [seq : u64] [reason] [npairs : u32] ([key] [value]) xn
                                       record quarantined at seq
     'R' [seq : u64]                   record left quarantine
     'N' [next : u64]                  sequence floor advanced

   A checkpoint image re-encodes live state as 'E' + 'P' + 'Q' + 'N' ops,
   so replay needs only this one decoder. *)

let add_str buffer s =
  Durable.Frame.put_u32 buffer (String.length s);
  Buffer.add_string buffer s

let encode_entry entry =
  let buffer = Buffer.create 64 in
  Buffer.add_char buffer 'E';
  add_str buffer (Hdb.Audit_schema.to_wire entry);
  Buffer.contents buffer

let encode_seq_entry ~seq entry =
  let buffer = Buffer.create 64 in
  Buffer.add_char buffer 'S';
  Durable.Frame.put_u64 buffer seq;
  add_str buffer (Hdb.Audit_schema.to_wire entry);
  Buffer.contents buffer

let encode_processed ~seq =
  let buffer = Buffer.create 16 in
  Buffer.add_char buffer 'P';
  Durable.Frame.put_u64 buffer seq;
  Buffer.contents buffer

let encode_quarantined ~seq ~raw ~reason =
  let buffer = Buffer.create 64 in
  Buffer.add_char buffer 'Q';
  Durable.Frame.put_u64 buffer seq;
  add_str buffer reason;
  Durable.Frame.put_u32 buffer (List.length raw);
  List.iter
    (fun (k, v) ->
      add_str buffer k;
      add_str buffer v)
    raw;
  Buffer.contents buffer

let encode_unquarantined ~seq =
  let buffer = Buffer.create 16 in
  Buffer.add_char buffer 'R';
  Durable.Frame.put_u64 buffer seq;
  Buffer.contents buffer

let encode_next ~next =
  let buffer = Buffer.create 16 in
  Buffer.add_char buffer 'N';
  Durable.Frame.put_u64 buffer next;
  Buffer.contents buffer

type op =
  | Op_entry of Hdb.Audit_schema.entry
  | Op_seq_entry of int * Hdb.Audit_schema.entry
  | Op_processed of int
  | Op_quarantined of int * string * (string * string) list (* seq, reason, raw *)
  | Op_unquarantined of int
  | Op_next of int

let decode_op s =
  let n = String.length s in
  let pos = ref 0 in
  let ( let* ) = Option.bind in
  let u64 () =
    if !pos + 8 > n then None
    else begin
      let v = Durable.Frame.get_u64 s !pos in
      pos := !pos + 8;
      if v < 0 then None else Some v
    end
  in
  let str () =
    if !pos + 4 > n then None
    else begin
      let len = Durable.Frame.get_u32 s !pos in
      pos := !pos + 4;
      if len < 0 || !pos + len > n then None
      else begin
        let v = String.sub s !pos len in
        pos := !pos + len;
        Some v
      end
    end
  in
  let entry () =
    let* wire = str () in
    Hdb.Audit_schema.of_wire wire
  in
  if n = 0 then None
  else begin
    pos := 1;
    match s.[0] with
    | 'E' ->
      let* e = entry () in
      if !pos <> n then None else Some (Op_entry e)
    | 'S' ->
      let* seq = u64 () in
      let* e = entry () in
      if !pos <> n then None else Some (Op_seq_entry (seq, e))
    | 'P' ->
      let* seq = u64 () in
      if !pos <> n then None else Some (Op_processed seq)
    | 'Q' ->
      let* seq = u64 () in
      let* reason = str () in
      let* npairs =
        if !pos + 4 > n then None
        else begin
          let v = Durable.Frame.get_u32 s !pos in
          pos := !pos + 4;
          if v < 0 then None else Some v
        end
      in
      let rec pairs acc k =
        if k = 0 then Some (List.rev acc)
        else
          let* key = str () in
          let* value = str () in
          pairs ((key, value) :: acc) (k - 1)
      in
      let* raw = pairs [] npairs in
      if !pos <> n then None else Some (Op_quarantined (seq, reason, raw))
    | 'R' ->
      let* seq = u64 () in
      if !pos <> n then None else Some (Op_unquarantined seq)
    | 'N' ->
      let* next = u64 () in
      if !pos <> n then None else Some (Op_next next)
    | _ -> None
  end

(* [quarantine] lets a restarted site adopt a quarantine recovered from a
   durable op log (its items keep their original seqs, so reprocessing
   after the restart composes with batch retries exactly as before the
   crash); the default is a fresh empty one. *)
let create ?(mapping = Mapping.identity) ?quarantine ~name () =
  { name;
    store = Hdb.Audit_store.create ();
    mapping;
    quarantine = (match quarantine with Some q -> q | None -> Quarantine.create ());
    processed = Hashtbl.create 64;
    next_seq = 0;
    wal = None;
    recovery = None;
    undecodable = 0;
    replay_pending = false;
    admission = None;
  }

(* Attach an existing store (e.g. an enforcement logger's). *)
let of_store ?(mapping = Mapping.identity) ?quarantine ~name store =
  { name;
    store;
    mapping;
    quarantine = (match quarantine with Some q -> q | None -> Quarantine.create ());
    processed = Hashtbl.create 64;
    next_seq = 0;
    wal = None;
    recovery = None;
    undecodable = 0;
    replay_pending = false;
    admission = None;
  }

let name t = t.name

let store t = t.store

let mapping t = t.mapping

(* e.g. after a privacy officer fixes a synonym; quarantined records can
   then be pushed back through [reprocess_quarantined]. *)
let set_mapping t mapping = t.mapping <- mapping

let quarantine t = t.quarantine

let quarantined_count t = Quarantine.site_count t.quarantine ~site:t.name

let length t = Hdb.Audit_store.length t.store

let next_seq t = t.next_seq

let log_op t payload =
  match t.wal with
  | Some log -> ignore (Durable.Log.append log payload)
  | None -> ()

(* State updates alone — shared by the public mutators (which log first)
   and recovery replay (whose ops are already in the log). *)
let apply_entry t entry = Hdb.Audit_store.append t.store entry

let apply_mark t seq = Hashtbl.replace t.processed seq ()

(* A seq witnessed in any logged op keeps the floor monotone even when the
   'N' op that covered it was lost past the torn tail. *)
let witness_seq t seq = if seq >= t.next_seq then t.next_seq <- seq + 1

let ingest_entry t entry =
  log_op t (encode_entry entry);
  apply_entry t entry

let ingest_entries t entries = List.iter (ingest_entry t) entries

(* @raise Mapping.Unmappable on malformed raw records. *)
let ingest_raw t raw = ingest_entry t (Mapping.apply t.mapping raw)

type ingest_summary = {
  ingested : int;
  quarantined : int;
  duplicates : int; (* seqs already ingested or already quarantined *)
}

let empty_summary = { ingested = 0; quarantined = 0; duplicates = 0 }

let summary_total s = s.ingested + s.quarantined + s.duplicates

(* One raw record at a known sequence number.  Atomic: either the record is
   ingested, or it lands in quarantine with the mapping failure — the store
   is never left half-updated, and a seq seen before is a no-op.  The op is
   logged before state changes, so a crash between the two replays to the
   same outcome. *)
let ingest_raw_seq t ~seq raw summary =
  if Hashtbl.mem t.processed seq || Quarantine.mem t.quarantine ~site:t.name ~seq then
    { summary with duplicates = summary.duplicates + 1 }
  else
    match Mapping.apply t.mapping raw with
    | entry ->
      log_op t (encode_seq_entry ~seq entry);
      apply_entry t entry;
      apply_mark t seq;
      { summary with ingested = summary.ingested + 1 }
    | exception Mapping.Unmappable reason ->
      log_op t (encode_quarantined ~seq ~raw ~reason);
      Quarantine.add t.quarantine ~site:t.name ~seq ~raw ~reason;
      { summary with quarantined = summary.quarantined + 1 }

(* A batch whose records occupy seqs [first_seq, first_seq + length).  A
   retried batch re-sends the same [first_seq]; its already-processed
   records count as duplicates and are skipped. *)
let ingest_raw_batch ?first_seq t raws =
  let first = Option.value first_seq ~default:t.next_seq in
  let next = max t.next_seq (first + List.length raws) in
  if next > t.next_seq then begin
    log_op t (encode_next ~next);
    t.next_seq <- next
  end;
  let summary, _ =
    List.fold_left
      (fun (summary, seq) raw -> (ingest_raw_seq t ~seq raw summary, seq + 1))
      (empty_summary, first) raws
  in
  summary

(* Fresh records at the next sequence numbers; never raises — failures are
   quarantined per record. *)
let ingest_raw_all t raws = ingest_raw_batch t raws

(* {2 Admitted ingestion} — the tenant gate in front of the mutation path.

   Ingestion is a Mutation, so the admission controller never browns it
   out: either the whole batch is admitted (and then ingests exactly as
   the un-gated path would), or it is shed with a typed, retryable
   rejection before ANY state — store, ledger, quarantine, WAL — is
   touched.  With no controller attached the gate is a no-op. *)

let set_admission t admission = t.admission <- admission

let admission t = t.admission

let admission_gate t ~now ~principal ~batch_rows =
  match t.admission with
  | None -> Ok ()
  | Some adm -> (
      let cost = Admission.cost ~rows:batch_rows () in
      match Admission.admit adm ~now ~kind:Admission.Mutation principal cost with
      | Admission.Admitted _ -> Ok ()
      | Admission.Brownout _ -> assert false (* mutations are never browned out *)
      | Admission.Rejected r -> Error r)

let ingest_entries_admitted t ~now ~principal entries =
  match admission_gate t ~now ~principal ~batch_rows:(List.length entries) with
  | Error _ as e -> e
  | Ok () ->
      ingest_entries t entries;
      Ok (List.length entries)

let ingest_raw_batch_admitted ?first_seq t ~now ~principal raws =
  match admission_gate t ~now ~principal ~batch_rows:(List.length raws) with
  | Error _ as e -> e
  | Ok () -> Ok (ingest_raw_batch ?first_seq t raws)

(* Push the site's quarantined records back through the (possibly fixed)
   mapping; records that still fail return to quarantine.  Original seqs are
   kept, so reprocessing composes with batch retries without double
   ingestion.  Each departure is logged ('R') before the re-ingestion op
   ('S' or a fresh 'Q'), so replay reproduces the resolution. *)
let reprocess_quarantined t =
  let stuck = Quarantine.site_items t.quarantine ~site:t.name in
  List.fold_left
    (fun summary (item : Quarantine.item) ->
      log_op t (encode_unquarantined ~seq:item.Quarantine.seq);
      Quarantine.remove t.quarantine ~site:t.name ~seq:item.Quarantine.seq;
      ingest_raw_seq t ~seq:item.Quarantine.seq item.Quarantine.raw summary)
    empty_summary stuck

let entries t = Hdb.Audit_store.to_list t.store

(* --- per-site durability --- *)

let wal t = t.wal

let recovery t = t.recovery

let undecodable t = t.undecodable

let attach_wal t log = t.wal <- Some log

let sync_wal t = Option.iter Durable.Log.sync t.wal

(* The live state re-encoded as ops: entries first, then the ledger, the
   quarantine, and the sequence floor.  Replay order is immaterial across
   the groups — they touch disjoint state. *)
let checkpoint_image t =
  let entry_ops = List.rev_map encode_entry (List.rev (entries t)) in
  let seqs = Hashtbl.fold (fun seq () acc -> seq :: acc) t.processed [] in
  let mark_ops = List.map (fun seq -> encode_processed ~seq) (List.sort Int.compare seqs) in
  let quarantine_ops =
    List.map
      (fun (item : Quarantine.item) ->
        encode_quarantined ~seq:item.Quarantine.seq ~raw:item.Quarantine.raw
          ~reason:item.Quarantine.reason)
      (Quarantine.site_items t.quarantine ~site:t.name)
  in
  entry_ops @ mark_ops @ quarantine_ops @ [ encode_next ~next:t.next_seq ]

(* Compact the op history into a snapshot of the live state and truncate
   the WAL. *)
let checkpoint_wal t =
  match t.wal with
  | None -> ()
  | Some log -> Durable.Log.checkpoint log ~entries:(checkpoint_image t)

(* Keep the op log bounded: compact automatically once it exceeds the
   policy.  Safe because mutations are write-ahead — at trigger time the
   live state is exactly what the logged ops produce. *)
let enable_auto_checkpoint ?(policy = Durable.Log.checkpoint_every ~records:1024 ()) t =
  match t.wal with
  | None -> ()
  | Some log -> Durable.Log.set_auto_checkpoint log policy (fun () -> checkpoint_image t)

let apply_op t = function
  | Op_entry e -> apply_entry t e
  | Op_seq_entry (seq, e) ->
    apply_entry t e;
    apply_mark t seq;
    witness_seq t seq
  | Op_processed seq ->
    apply_mark t seq;
    witness_seq t seq
  | Op_quarantined (seq, reason, raw) ->
    Quarantine.add t.quarantine ~site:t.name ~seq ~raw ~reason;
    witness_seq t seq
  | Op_unquarantined seq -> Quarantine.remove t.quarantine ~site:t.name ~seq
  | Op_next next -> if next > t.next_seq then t.next_seq <- next

(* Replay a recovered op log into [t] (assumed fresh), then attach it so
   new mutations are write-ahead.  Ops that fail to decode are counted —
   they passed their CRC, so a non-zero count means a codec mismatch. *)
let restore t log =
  let report = Durable.Log.open_or_recover log in
  let undecodable = ref 0 in
  List.iter
    (fun payload ->
      match decode_op payload with
      | Some op -> apply_op t op
      | None -> incr undecodable)
    report.Durable.Recovery.entries;
  t.wal <- Some log;
  t.recovery <- Some report;
  t.undecodable <- !undecodable;
  t.replay_pending <-
    Durable.Recovery.dropped_tail report
    || Durable.Recovery.tampered report
    || !undecodable > 0;
  (report, !undecodable)

let open_durable ?mapping ~name log =
  let t = create ?mapping ~name () in
  let report, undecodable = restore t log in
  (t, report, undecodable)

(* A site is durably degraded after a lossy or tampered recovery until its
   feed replays the lost suffix: records accepted before the crash may be
   missing from the store, so the site's own length is not a trustworthy
   total and consolidation must stay at [Lower_bound]. *)
let durably_degraded t = t.replay_pending

(* The feed declares it has re-sent everything past the verified prefix
   (it knows the suffix; the site only knows its [next_seq] floor). *)
let acknowledge_replay t = t.replay_pending <- false
