(** One audited system in the clinical environment: a named audit store
    plus the mapping that normalises its raw records.

    Raw ingestion is atomic per record: malformed records are routed to the
    site's quarantine instead of aborting the batch, and every raw record
    carries a site-local sequence number so retried batches are idempotent
    (exactly-once ingestion). *)

type t

val create : ?mapping:Mapping.t -> ?quarantine:Quarantine.t -> name:string -> unit -> t
(** A fresh site with its own store and quarantine; [mapping] defaults to
    {!Mapping.identity}.  [quarantine] lets a restarted site adopt a
    quarantine recovered from a durable op log (items keep their original
    seqs, so reprocessing composes with batch retries across the
    restart). *)

val of_store :
  ?mapping:Mapping.t -> ?quarantine:Quarantine.t -> name:string -> Hdb.Audit_store.t -> t
(** Attach an existing store — e.g. an enforcement logger's. *)

val name : t -> string
val store : t -> Hdb.Audit_store.t
val mapping : t -> Mapping.t

val set_mapping : t -> Mapping.t -> unit
(** Replace the mapping — e.g. after a synonym fix; quarantined records can
    then be pushed back through {!reprocess_quarantined}. *)

val quarantine : t -> Quarantine.t
val quarantined_count : t -> int
val length : t -> int

val next_seq : t -> int
(** The sequence number the next fresh raw record will receive. *)

val ingest_entry : t -> Hdb.Audit_schema.entry -> unit
val ingest_entries : t -> Hdb.Audit_schema.entry list -> unit

val ingest_raw : t -> (string * string) list -> unit
(** Legacy single-record path: a raw record through the site's mapping,
    bypassing sequence accounting.
    @raise Mapping.Unmappable on malformed records. *)

type ingest_summary = {
  ingested : int;
  quarantined : int;
  duplicates : int;
}

val summary_total : ingest_summary -> int

val ingest_raw_batch :
  ?first_seq:int -> t -> (string * string) list list -> ingest_summary
(** A batch whose records occupy seqs [first_seq, first_seq + length);
    defaults to the next fresh seqs.  A retried batch re-sends the same
    [first_seq]: already-ingested (or already-quarantined) records count as
    duplicates and are skipped, giving exactly-once ingestion across
    retries.  Never raises — malformed records are quarantined per record,
    leaving the rest of the batch ingested. *)

val ingest_raw_all : t -> (string * string) list list -> ingest_summary
(** [ingest_raw_batch] at the next fresh sequence numbers. *)

(** {2 Admitted ingestion} — the tenant gate in front of the mutation
    path.  Ingestion is a {!Admission.Mutation}, so it is never browned
    out: either the whole batch is admitted and ingests exactly as the
    un-gated path would, or it is shed with a typed retryable rejection
    before any state (store, ledger, quarantine, WAL) is touched. *)

val set_admission : t -> Admission.t option -> unit
(** Attach (or detach) the shared admission controller. *)

val admission : t -> Admission.t option

val ingest_entries_admitted :
  t -> now:int -> principal:Admission.principal -> Hdb.Audit_schema.entry list ->
  (int, Admission.rejection) result
(** All-or-nothing: [Ok n] ingested the whole batch of [n] entries;
    [Error r] shed it whole. *)

val ingest_raw_batch_admitted :
  ?first_seq:int -> t -> now:int -> principal:Admission.principal ->
  (string * string) list list ->
  (ingest_summary, Admission.rejection) result
(** {!ingest_raw_batch} behind the gate; the whole batch (including
    records that would quarantine or dedupe) is costed as rows. *)

val reprocess_quarantined : t -> ingest_summary
(** Push quarantined records back through the (possibly fixed) mapping;
    records that still fail return to quarantine.  Original seqs are kept,
    so reprocessing never double-ingests. *)

val entries : t -> Hdb.Audit_schema.entry list

(** {2 Per-site durability}

    A site may sit on its own {!Durable.Log.t}: every mutation — an
    accepted entry, a ledger mark, a quarantine add/remove, a sequence
    advance — is framed as an op record into the write-ahead log {e
    before} the in-memory state changes, so the store, the exactly-once
    ledger and the in-flight quarantine survive a site-local crash and
    replay locally instead of re-ingesting from the source.  A site with
    its own WAL owns its quarantine's durability — do not also attach a
    {!Quarantine.attach_log} log to the same quarantine. *)

val attach_wal : t -> Durable.Log.t -> unit
(** Future mutations are write-ahead logged.  State already held is
    {e not} retro-logged — attach at creation or via {!restore}. *)

val wal : t -> Durable.Log.t option

val recovery : t -> Durable.Recovery.t option
(** The report of the last {!restore}, if any. *)

val undecodable : t -> int
(** Recovered ops that no longer decode (0 unless the codec changed). *)

val sync_wal : t -> unit
(** fsync the attached WAL (no-op without one). *)

val checkpoint_wal : t -> unit
(** Compact the op history into a snapshot of the live state (entries,
    ledger, quarantine, sequence floor) and truncate the WAL. *)

val enable_auto_checkpoint : ?policy:Durable.Log.checkpoint_policy -> t -> unit
(** Register a background-compaction policy (default: every 1024 WAL
    records) on the attached WAL; no-op without one. *)

val restore : t -> Durable.Log.t -> Durable.Recovery.t * int
(** Open-or-recover [log], replay the verified ops into [t] (assumed
    fresh), attach the log, and return the recovery report plus the count
    of undecodable ops.  A lossy or tampered recovery leaves the site
    {!durably_degraded} until {!acknowledge_replay}. *)

val open_durable :
  ?mapping:Mapping.t -> name:string -> Durable.Log.t -> t * Durable.Recovery.t * int
(** [create] + {!restore} — the crash-restart entry point. *)

val durably_degraded : t -> bool
(** The last recovery lost records (torn tail), found tampering, or hit
    undecodable ops, and the feed has not yet replayed the lost suffix:
    the site's own length is not a trustworthy total, so consolidation
    must keep coverage at [Lower_bound]. *)

val acknowledge_replay : t -> unit
(** The feed declares it has re-sent everything past the verified prefix
    (it knows the lost suffix; the site only knows its [next_seq] floor),
    clearing {!durably_degraded}. *)
