(** The PRIMA Audit Management component: a consolidated virtual view over
    every site's audit trail — the role DB2 Information Integrator plays in
    the paper's first instantiation.

    Two consolidation paths coexist: {!consolidated} is the trusted direct
    view (in-process reads, cannot fail — also the fault-free baseline for
    the fault-matrix suite), while {!consolidated_result} is the production
    path — breaker-gated, retried fetches through each site's fault wrapper,
    corrupted records quarantined, and a {!Health.t} report accounting for
    100% of input records. *)

type t

val create : ?retry:Retry.policy -> ?seed:int -> unit -> t
(** [seed] feeds the retry-jitter PRNG; fault schedules have their own
    per-site seeds (see {!Fault.wrap}). *)

val of_sites : Site.t list -> t

val add_site : t -> Site.t -> unit
(** A member with perfect in-process transport. *)

val add_faulty_site : ?breaker:Breaker.config -> t -> Fault.t -> unit
(** A member reached through a fault-injection wrapper, gated by its own
    circuit breaker. *)

val sites : t -> Site.t list
val site : t -> string -> Site.t option
val fault : t -> string -> Fault.t option
val breaker : t -> string -> Breaker.t option

val set_fault : t -> string -> Fault.t option -> unit
(** Replace (or clear) a member's fault wrapper.
    @raise Invalid_argument on an unknown site. *)

val reseat_site : t -> string -> Site.t -> unit
(** Swap in a replacement site — e.g. one rebuilt from its WAL after a
    crash — keeping the member's breaker history and fault schedule.
    @raise Invalid_argument on an unknown site. *)

val attach_archive : t -> Shard_store.t -> unit
(** Attach the durable consolidated archive: successful fetches are
    archived per (site, time-range) shard, and a site whose live fetch
    fails — or whose breaker is open — is served {e stale} from its
    servable shards instead of being skipped outright. *)

val archive : t -> Shard_store.t option

val set_admission : t -> Admission.t option -> unit
(** Attach (or detach) a tenant admission controller, sharing it with
    every member site's ingestion gate — including sites added or
    reseated later.  The federation owns the gate: joining a federation
    replaces whatever controller a site carried. *)

val admission : t -> Admission.t option

val pressure_signals : t -> Admission.pressure
(** The live overload signals: un-synced site-WAL records, degraded
    archive shards, open breakers. *)

val refresh_pressure : t -> unit
(** Re-derive {!pressure_signals} into the attached controller (no-op
    without one).  {!consolidated_result} does this implicitly. *)

val class_health_rows : t -> Health.class_health list
(** Per-budget-class admission counters as health rows; [[]] without a
    controller. *)

val heal_all : t -> unit
(** {!Fault.heal} every member — the recovery step of the convergence
    oracle. *)

val clock : t -> int
(** The simulated millisecond clock retries and breaker cooldowns run on. *)

val advance_clock : t -> int -> unit
val retry_policy : t -> Retry.policy
val set_retry_policy : t -> Retry.policy -> unit

val transit_quarantine : t -> Quarantine.t
(** Records corrupted in transit during the latest fetch of each site; a
    later clean fetch of the site clears its items. *)

val total_entries : t -> int

val consolidated : t -> Hdb.Audit_schema.entry list
(** Tournament merge of the per-site streams by timestamp; ties resolve
    in site order (stable and deterministic).  Out-of-order site logs are
    sorted defensively.  Direct in-process reads: never fails. *)

type result_t = {
  entries : Hdb.Audit_schema.entry list;
  health : Health.t;
}

val consolidated_result : t -> result_t
(** The production path: each site fetched through its fault wrapper (if
    any) under retry/backoff, gated by its circuit breaker; corrupted
    records quarantined.  Never raises — failures degrade the health report
    instead: delivered + quarantined + stranded = 100% of known input.
    With an archive attached, failed sites degrade to stale archive reads
    (see {!attach_archive}) and each health entry carries the site's
    durable state (shard health, pending WAL replay). *)

val to_policy : t -> Prima_core.Policy.t
(** The consolidated view as P_AL. *)

val window : t -> time_from:int -> time_to:int -> Hdb.Audit_schema.entry list
(** Consolidated entries within an inclusive time window — e.g. one
    refinement epoch. *)

val pp : Format.formatter -> t -> unit
