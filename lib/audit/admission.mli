(** Multi-tenant admission control: budget classes, load shedding and
    brownout.

    Every request entering the federation — an ingestion batch or an
    enforcement/refinement query — carries a {!principal} (tenant, user,
    and the PR 6 provenance session/request ids).  Principals map to
    {e budget classes}: per-class token buckets over the same four
    resources the query governor meters (rows, tuples, ticks, wall
    milliseconds), refilled on the simulated millisecond clock.  The
    refill boundary is {e closed}: a token owed at exactly-now is granted
    at that tick, mirroring {!Retry.deadline_reached}'s [>=] treatment of
    the retry deadline.  A zero-capacity class never admits and its
    rejections carry no retry hint ([retry_after_ms = None]).

    Decisions are all-or-nothing with respect to state: an {!Admitted}
    or {!Brownout} grant debits the class buckets; a {!Rejected} request
    debits nothing and must leave every store untouched.  Brownout — a
    downgrade to {!Relational.Budget.Partial} execution whose results are
    honest lower bounds — is only ever offered to [Query] requests;
    a [Mutation] is either admitted whole or shed whole.

    Backpressure raises the admission bar: WAL sync lag
    ({!Durable.Log.pending_records}), degraded archive shards
    ({!Shard_store.shards_degraded}) and open breakers each add one
    pressure level, and a strict admit then requires
    [(1 + level) * cost] headroom.  A request that clears the plain cost
    but not the raised bar is browned out (queries) or shed (mutations)
    rather than silently degraded.

    {!drain} arbitrates a burst across classes with deficit round-robin:
    each round credits every backlogged class [weight * quantum] scalar
    units of deficit and serves affordable heads in class order, so a
    10:1 hot tenant queues behind its own share and cannot starve other
    classes.  An optional [serve_limit] models the server's capacity for
    the burst; requests beyond it are shed with a retry hint. *)

type principal = {
  tenant : string;
  user : string;
  session : string;  (** PR 6 provenance session id *)
  request : string;  (** PR 6 provenance request id *)
}

val principal :
  ?user:string -> ?session:string -> ?request:string -> tenant:string -> unit -> principal
(** [user] defaults to [tenant]; [session]/[request] default to [""]. *)

type quota = {
  capacity : int;  (** bucket size; 0 = this class never admits the resource *)
  refill_per_s : int;  (** tokens credited per simulated second *)
}

val quota : ?refill_per_s:int -> capacity:int -> unit -> quota
(** [refill_per_s] defaults to [capacity] (full refresh once a second). *)

type class_config = {
  weight : int;  (** fair-share weight for {!drain}; must be >= 1 *)
  rows : quota option;  (** [None] = unlimited *)
  tuples : quota option;
  ticks : quota option;
  wall_ms : quota option;
}

val class_config :
  ?weight:int -> ?rows:quota -> ?tuples:quota -> ?ticks:quota -> ?wall_ms:quota -> unit ->
  class_config
(** Omitted resources are unlimited; [weight] defaults to 1.
    @raise Invalid_argument on [weight < 1]. *)

type cost = { c_rows : int; c_tuples : int; c_ticks : int; c_wall_ms : int }

val cost : ?rows:int -> ?tuples:int -> ?ticks:int -> ?wall_ms:int -> unit -> cost
(** Omitted components are 0. *)

val cost_scalar : cost -> int
(** Service weight of a request for fair-share accounting:
    [max 1 (rows + tuples + ticks)]. *)

type kind =
  | Mutation  (** state-changing (ingestion); never browned out *)
  | Query  (** read-only (enforcement, refinement); may brown out *)

type grant = {
  g_class : string;
  g_mode : Relational.Budget.mode;  (** [Strict] for admits, [Partial] for brownouts *)
  g_limits : Relational.Budget.limits;  (** ceiling actually granted *)
}

type rejection = {
  r_tenant : string;
  r_class : string;
  r_resource : Relational.Errors.resource;  (** the binding resource *)
  retry_after_ms : int option;
      (** earliest simulated-ms delay after which the plain cost could be
          admitted; [None] when it never can (zero capacity or rate) *)
}

type decision =
  | Admitted of grant
  | Brownout of grant
  | Rejected of rejection

exception Admission_rejected of rejection
(** Typed, retryable shed signal for callers that prefer exceptions. *)

val rejection_to_string : rejection -> string

type pressure = {
  wal_backlog : int;  (** un-synced WAL records behind the stores *)
  degraded_shards : int;  (** torn or tampered archive shards *)
  open_breakers : int;  (** per-site breakers currently [Open] *)
}

val no_pressure : pressure

type class_stats = {
  cls : string;
  weight : int;
  admitted : int;  (** strict grants *)
  brownouts : int;  (** partial grants *)
  shed : int;  (** typed rejections *)
}

type t

val create : ?default_class:string -> ?now:int -> (string * class_config) list -> t
(** [create classes] registers [classes] in order.  [default_class]
    (default ["standard"]) is the class unassigned tenants fall into; if
    absent from [classes] it is created unlimited with weight 1.  [now]
    (default 0) seeds every bucket full at that clock reading. *)

val set_class : t -> string -> class_config -> unit
(** Add or replace a class.  Existing bucket levels are clamped to the
    new capacities; counters and deficit are preserved. *)

val assign : t -> tenant:string -> string -> unit
(** Map a tenant to a class.  @raise Invalid_argument on unknown class. *)

val class_of : t -> tenant:string -> string
val classes : t -> (string * class_config) list

val set_pressure : t -> pressure -> unit
val pressure : t -> pressure

val pressure_level : t -> int
(** 0–3: one level per active signal (backlog beyond 64 records, any
    degraded shard, any open breaker). *)

val admit : t -> now:int -> kind:kind -> principal -> cost -> decision
(** Refill the principal's class buckets at [now], then decide:
    strict admit needs [(1 + pressure_level) * cost] on every metered
    resource; a [Query] covering the plain cost — or at least half of it,
    with a floor of one token per requested resource — is browned out to
    the affordable grant; anything else is shed with a retry hint for the
    plain cost.  Grants debit the cost actually granted; sheds debit
    nothing. *)

val settle : t -> now:int -> principal -> declared:cost -> Relational.Errors.budget_stats -> unit
(** Charge the overrun of actual consumption beyond the declared cost
    against the admitted class (the declared part was debited at
    {!admit} time).  Buckets may go into bounded debt, delaying the
    class's next admit. *)

val drain :
  t -> now:int -> ?serve_limit:int ->
  (principal * cost * kind) list ->
  (principal * decision) list
(** Deficit-round-robin arbitration of a burst.  Results are in service
    order; every input appears exactly once.  [serve_limit] caps the
    total {!cost_scalar} the server will perform this drain — once
    exhausted, remaining requests are shed with a 1 ms retry hint.
    Per-class deficit persists across drains while a class stays
    backlogged and resets when its queue empties. *)

val stats : t -> class_stats list
(** Per-class counters, in class registration order. *)

val stats_of_class : t -> string -> class_stats option
val reset_counters : t -> unit
