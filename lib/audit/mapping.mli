(** Schema mappings for federating heterogeneous site logs.

    A legacy site may name columns differently ("role" for "authorized"),
    encode ops and statuses with its own tokens ("GRANTED"/"BTG") and use
    local value synonyms ("RN" for "nurse").  A mapping normalises one raw
    record — an (attribute, value) association — into the standard entry. *)

type t

val identity : t
(** For sites already speaking the standard schema (values are still
    lowercased). *)

val create :
  ?column_aliases:(string * string) list ->
  ?value_synonyms:((string * string) * string) list ->
  unit ->
  t
(** [column_aliases]: foreign column name -> standard attribute.
    [value_synonyms]: ((standard attribute, foreign value) -> standard
    value); matching is case-insensitive — both the registered foreign value
    and the raw value are lowercased before comparison, so a synonym
    registered as [("RN" -> "nurse")] matches the raw value ["RN"]. *)

val standard_attr : t -> string -> string
val standard_value : t -> attr:string -> string -> string

exception Unmappable of string

val apply : t -> (string * string) list -> Hdb.Audit_schema.entry
(** Normalises a raw record.  Op accepts 1/true/yes/allow/granted vs
    0/false/no/deny/denied; status accepts regular vs exception/btg.
    @raise Unmappable when a required attribute is absent or unreadable. *)
