(** Bounded retry with exponential backoff and jitter, over a simulated
    millisecond clock.

    Nothing here reads wall-clock time or sleeps: the caller passes a clock
    cell that retries advance by their computed delays, and jitter draws
    from the shared {!Splitmix} stream — every retry schedule is
    reproducible bit-for-bit from the seed. *)

type policy = {
  max_attempts : int;  (** total tries, including the first *)
  base_delay : int;  (** ms before the second attempt *)
  max_delay : int;  (** backoff ceiling, ms *)
  jitter : float;  (** +/- fraction of the delay, in [0, 1] *)
  deadline : int;
      (** overall budget: the half-open window [0, deadline) of elapsed
          simulated ms.  An attempt that would start at {e exactly}
          [deadline] is refused — the boundary is closed, identically at
          both the post-failure and the post-backoff check. *)
}

val default : policy
val no_retry : policy

type stats = {
  attempts : int;
  elapsed : int;  (** simulated ms spent waiting between attempts *)
}

val delay_before : policy -> Splitmix.t -> attempt:int -> int
(** Jittered backoff before attempt [attempt + 1] (1-based). *)

val run :
  ?policy:policy ->
  prng:Splitmix.t ->
  clock:int ref ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e) result * stats
(** Run until [Ok], attempts are exhausted, or the deadline is blown.  The
    callback receives the 1-based attempt number; the last error wins. *)

val pp_stats : Format.formatter -> stats -> unit
