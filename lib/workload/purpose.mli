(** Purposes as plans: multi-step clinical workflows.

    Following the plan-based reading of purpose (Tschantz, Datta and
    Wing), a purpose is not a label on one access but a plan the accesses
    jointly execute: admission, consultation, referral, billing.  Each
    template below is such a plan over the hospital vocabulary; an
    instance is the plan's step sequence realised as audit entries.

    The adversarial interest is the {e twist}: a violation that is
    invisible entry-by-entry — every access uses a staffed role, a ground
    vocabulary value and a [Regular] status — and shows up only as an
    implausible {e sequence}: a skipped admission, billing before the
    consult, an administrative clerk inside a clinical plan.  {!conforms}
    is the sequence-level check (prefix conformance against the template
    library) that separates the two. *)

type step = {
  data : string;
  purpose : string;
  authorized : string;  (** the leaf role the plan assigns this step to *)
}

type template = {
  name : string;
  steps : step list;  (** in plan order; at least three steps *)
}

val templates : template list
(** The plan library: inpatient admission, imaging workup, emergency
    visit.  Every value is a ground leaf of the hospital vocabulary and
    every role is staffed in {!Hospital.default_config}; templates have
    pairwise-distinct first steps, so prefix conformance is
    unambiguous. *)

(** A plan-implausible violation: entries stay individually innocent, the
    sequence betrays them. *)
type twist =
  | Skip_step  (** a required middle step never happened *)
  | Swap_steps  (** two adjacent steps out of order (e.g. billed before the consult) *)
  | Alien_role  (** one step performed by a role foreign to the plan *)

val all_twists : twist list
val twist_to_string : twist -> string

val twist_of_string : string -> twist option
(** Inverse of {!twist_to_string} — serialized chaos schedules round-trip
    through these names. *)

type instance = {
  template : template;
  twist : twist option;
  entries : Hdb.Audit_schema.entry list;
}

val instantiate :
  Prng.t -> Hospital.config -> ?twist:twist -> start_time:int -> template -> instance
(** Realise the plan as audit entries at consecutive times from
    [start_time], drawing each step's user from the staffed members of
    its role.  All steps are [Regular] [Allow] accesses — with a twist
    applied, the violation is only visible to {!conforms}. *)

val steps_of_entries : Hdb.Audit_schema.entry list -> (string * string * string) list
(** Project entries to their (data, purpose, authorized) triples. *)

val conforms : (string * string * string) list -> bool
(** Is the observed triple sequence a prefix (possibly complete, possibly
    mid-flight) of some template's plan?  Every untwisted instance
    conforms; every twisted instance must not — the harness checks this
    classification as its purpose-plausibility invariant. *)
