(* The workload-facing alias for the shared SplitMix64 generator.  The
   implementation lives in the base [splitmix] library so that lower layers
   (e.g. the audit fault-injection harness) can draw from the same
   deterministic stream without depending on workload. *)

include Splitmix
