(** Alias for the shared {!Splitmix} deterministic PRNG (SplitMix64).

    Kept under [Workload] for compatibility; the implementation lives in the
    base [splitmix] library so audit-layer fault injection can reuse it. *)

include module type of struct
  include Splitmix
end
