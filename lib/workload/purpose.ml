(* Purposes as plans: multi-step clinical workflows (after Tschantz,
   Datta and Wing's plan-based reading of purpose).

   A template is a plan over the hospital vocabulary; an instance
   realises it as audit entries.  A twist is a violation visible only as
   an implausible sequence — every individual entry uses a staffed role,
   a ground value and a Regular status.  [conforms] is the sequence-level
   prefix check that separates plausible from twisted. *)

type step = {
  data : string;
  purpose : string;
  authorized : string;
}

type template = {
  name : string;
  steps : step list;
}

let s data purpose authorized = { data; purpose; authorized }

(* Every value is a ground leaf of Vocabulary.Samples.hospital and every
   role is staffed in Hospital.default_config.  First steps are pairwise
   distinct so prefix conformance is unambiguous. *)
let templates =
  [ { name = "inpatient-admission";
      steps =
        [ s "admission-record" "registration" "receptionist";
          s "vitals" "diagnosis" "nurse";
          s "lab-results" "diagnosis" "doctor";
          s "referral" "treatment" "doctor";
          s "insurance" "billing" "billing-specialist";
        ];
    };
    { name = "imaging-workup";
      steps =
        [ s "appointments" "scheduling" "receptionist";
          s "x-ray" "diagnosis" "radiologist";
          s "x-ray" "treatment" "doctor";
          s "payment-history" "claims-processing" "billing-specialist";
        ];
    };
    { name = "emergency-visit";
      steps =
        [ s "admission-record" "emergency-care" "emergency-physician";
          s "vitals" "emergency-care" "nurse";
          s "prescription" "treatment" "emergency-physician";
          s "discharge-record" "transfer" "nurse";
          s "insurance" "billing" "billing-specialist";
        ];
    };
  ]

type twist =
  | Skip_step
  | Swap_steps
  | Alien_role

let all_twists = [ Skip_step; Swap_steps; Alien_role ]

let twist_to_string = function
  | Skip_step -> "skip-step"
  | Swap_steps -> "swap-steps"
  | Alien_role -> "alien-role"

let twist_of_string = function
  | "skip-step" -> Some Skip_step
  | "swap-steps" -> Some Swap_steps
  | "alien-role" -> Some Alien_role
  | _ -> None

type instance = {
  template : template;
  twist : twist option;
  entries : Hdb.Audit_schema.entry list;
}

(* Apply a twist to a step list.  Parameters are drawn from [rng] but
   constrained so the result can never be a prefix of any template (the
   exhaustive check lives in test_workload):
   - Skip_step drops a middle step, so the tail no longer lines up;
   - Swap_steps transposes an adjacent pair;
   - Alien_role hands one step to a clerk — a staffed role no plan uses. *)
let twist_steps rng twist steps =
  let n = List.length steps in
  match twist with
  | Skip_step ->
    let drop = 1 + Prng.int rng (n - 2) in
    List.filteri (fun i _ -> i <> drop) steps
  | Swap_steps ->
    let i = Prng.int rng (n - 1) in
    List.mapi
      (fun j step ->
        if j = i then List.nth steps (i + 1)
        else if j = i + 1 then List.nth steps i
        else step)
      steps
  | Alien_role ->
    let i = Prng.int rng n in
    List.mapi (fun j step -> if j = i then { step with authorized = "clerk" } else step) steps

let user_for rng config role =
  match Hospital.users_of_role config role with
  | [] -> role ^ "-00"
  | users -> Prng.pick rng users

let instantiate rng (config : Hospital.config) ?twist ~start_time template =
  let steps =
    match twist with
    | None -> template.steps
    | Some tw -> twist_steps rng tw template.steps
  in
  let entries =
    List.mapi
      (fun i step ->
        Hdb.Audit_schema.entry ~time:(start_time + i) ~op:Hdb.Audit_schema.Allow
          ~user:(user_for rng config step.authorized) ~data:step.data ~purpose:step.purpose
          ~authorized:step.authorized ~status:Hdb.Audit_schema.Regular)
      steps
  in
  { template; twist; entries }

let steps_of_entries entries =
  List.map
    (fun (e : Hdb.Audit_schema.entry) -> (e.data, e.purpose, e.authorized))
    entries

(* Prefix conformance: the observed triples line up, step for step, with
   the start of some plan.  Mid-flight plans (strict prefixes) conform;
   so does the empty observation. *)
let conforms observed =
  let matches_template t =
    let rec go obs steps =
      match (obs, steps) with
      | [], _ -> true
      | _ :: _, [] -> false
      | (d, p, a) :: obs', step :: steps' ->
        String.equal d step.data && String.equal p step.purpose
        && String.equal a step.authorized && go obs' steps'
    in
    go observed t.steps
  in
  List.exists matches_template templates
