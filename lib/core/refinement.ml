(* Algorithm 2: Refinement(P_PS, P_AL, V) — the feedback loop between real
   and ideal policy.

     Practice        <- Filter(P_AL)                  (Algorithm 3)
     Patterns        <- extractPatterns(Practice, V)  (Algorithms 4-5)
     usefulPatterns  <- Prune(Patterns, P_PS, V)      (Algorithm 6)

   plus the human acceptance step the paper mandates after Prune, modelled
   as a pluggable [acceptance] policy, and an epoch driver that folds the
   accepted patterns back into the policy store and tracks coverage. *)

let log_src = Logs.Src.create "prima.refinement" ~doc:"PRIMA policy refinement runs"

module Log = (val Logs.src_log log_src : Logs.LOG)

type acceptance =
  | Accept_all (* trusting privacy officer: every useful pattern adopted *)
  | Reject_all (* audit-only mode: nothing changes *)
  | Oracle of (Rule.t -> bool) (* e.g. ground-truth classifier in experiments *)

type config = {
  backend : Extract_patterns.backend;
  keep_prohibitions : bool;
  acceptance : acceptance;
  limits : Relational.Budget.limits option;
      (* resource budget for the pattern-extraction query; None = ungoverned *)
}

let default_config =
  { backend = Extract_patterns.default_backend;
    keep_prohibitions = false;
    acceptance = Accept_all;
    limits = None;
  }

(* Pattern extraction under the config's budget (if any); the ungoverned
   path is wrapped as an exact result so the epoch logic is uniform. *)
let extract config practice : Data_analysis.governed =
  match config.limits with
  | None -> Data_analysis.exact (Extract_patterns.run ~backend:config.backend practice)
  | Some limits -> Extract_patterns.run_governed ~backend:config.backend ~limits practice

(* Algorithm 2 verbatim: the useful patterns, before human review. *)
let useful_patterns ?(config = default_config) ~vocab ~p_ps ~p_al () : Rule.t list =
  let practice = Filter.run ~keep_prohibitions:config.keep_prohibitions p_al in
  let patterns = (extract config practice).Data_analysis.patterns in
  Prune.run vocab ~patterns ~p_ps

let accept acceptance patterns =
  match acceptance with
  | Accept_all -> patterns
  | Reject_all -> []
  | Oracle judge -> List.filter judge patterns

type epoch_report = {
  practice_size : int;
  patterns : Rule.t list;
  useful : Rule.t list;
  accepted : Rule.t list;
  p_ps' : Policy.t;
  coverage_before : Coverage.stats;
  coverage_after : Coverage.stats;
  (* Exact when the epoch saw the whole consolidated trail; Lower_bound
     with the window's completeness when sites were skipped or records
     quarantined during consolidation — or when pattern extraction hit its
     resource budget and degraded to a prefix of the practice table. *)
  qualifier : Coverage.qualifier;
  degraded : bool; (* extraction exceeded its budget and was truncated *)
  budget_stats : Relational.Errors.budget_stats; (* resources extraction used *)
}

(* One refinement epoch: run the pipeline, apply the acceptance policy,
   extend the store, and report coverage (bag semantics over the audit
   entries, per Section 5) before and after.  The audit policy is projected
   onto the pattern attributes once and shared by both coverage calls; the
   second call grounds the same rules as the first plus the accepted
   patterns, so it runs almost entirely out of the grounding memo. *)
let run_epoch ?(config = default_config) ?(completeness = 1.0) ?(verified = true) ~vocab
    ~p_ps ~p_al () : epoch_report =
  let attrs = Vocabulary.Audit_attrs.pattern in
  let practice = Filter.run ~keep_prohibitions:config.keep_prohibitions p_al in
  let extraction = extract config practice in
  let patterns = extraction.Data_analysis.patterns in
  if extraction.Data_analysis.degraded then
    Log.warn (fun m ->
        m "pattern extraction hit its resource budget (%s); patterns are a lower bound"
          (Relational.Errors.stats_to_string extraction.Data_analysis.stats));
  let useful = Prune.run vocab ~patterns ~p_ps in
  let accepted = accept config.acceptance useful in
  let p_ps' = Policy.add_rules p_ps accepted in
  let p_al_proj = Policy.project p_al ~attrs in
  let coverage_before =
    Coverage.compute_bag vocab ~p_x:(Policy.project p_ps ~attrs) ~p_y:p_al_proj
  in
  let coverage_after =
    Coverage.compute_bag vocab ~p_x:(Policy.project p_ps' ~attrs) ~p_y:p_al_proj
  in
  Log.info (fun m ->
      m "epoch: %d practice entries, %d patterns, %d useful, %d accepted, coverage %.0f%% -> %.0f%%"
        (Policy.cardinality practice) (List.length patterns) (List.length useful)
        (List.length accepted)
        (100. *. coverage_before.Coverage.coverage)
        (100. *. coverage_after.Coverage.coverage));
  { practice_size = Policy.cardinality practice;
    patterns;
    useful;
    accepted;
    p_ps';
    coverage_before;
    coverage_after;
    (* A degraded extraction saw only a prefix of the practice table, so
       the epoch's readings cannot be certified exact. *)
    qualifier =
      (Coverage.qualify
         ~verified:(verified && not extraction.Data_analysis.degraded)
         ~completeness coverage_after)
        .Coverage.qualifier;
    degraded = extraction.Data_analysis.degraded;
    budget_stats = extraction.Data_analysis.stats;
  }

(* Iterated refinement over a stream of audit batches: each epoch sees one
   batch, extends the store, and the next batch is judged against the
   refined store — the Figure 2 trajectory. *)
let run_epochs ?(config = default_config) ~vocab ~p_ps ~batches () :
    epoch_report list * Policy.t =
  let reports, final_ps =
    List.fold_left
      (fun (reports, store) batch ->
        let report = run_epoch ~config ~vocab ~p_ps:store ~p_al:batch () in
        (report :: reports, report.p_ps'))
      ([], p_ps) batches
  in
  (List.rev reports, final_ps)
