(* Definition 5: a Rule is a conjunction of RuleTerms.  Terms are kept
   sorted by (attr, value) so structurally equal ground rules compare equal,
   which makes range sets (Definition 8) well defined.

   Rules carry a precomputed structural hash (folded over the interned
   terms' hashes), so hashing is O(1) and equality rejects mismatches in
   O(1) — the operations the hash-based [Range] performs per ground rule.
   Grounding (Corollary 1) is additionally memoized per (vocabulary, rule):
   audit-log policies repeat the same composite rules thousands of times,
   and the refinement loop grounds the same policy store every epoch. *)

type t = {
  terms : Rule_term.t list;
  hash : int;
}

let combine_hash h1 h2 = (h1 * 0x01000193) lxor h2

let hash_terms terms =
  List.fold_left (fun acc term -> combine_hash acc (Rule_term.hash term)) 0x811c9dc5 terms

let of_terms terms = { terms; hash = hash_terms terms }

let make terms : t =
  if terms = [] then invalid_arg "Rule.make: a rule needs at least one term";
  of_terms (List.sort_uniq Rule_term.compare terms)

let of_assoc pairs = make (List.map (fun (attr, value) -> Rule_term.make ~attr ~value) pairs)

let to_assoc t = List.map (fun term -> (Rule_term.attr term, Rule_term.value term)) t.terms

let terms t = t.terms

(* #R of Definition 5. *)
let cardinality t = List.length t.terms

let hash t = t.hash

let compare a b =
  if a == b then 0 else List.compare Rule_term.compare a.terms b.terms

(* O(1) on the fast path: pointer equality accepts, hash inequality
   rejects; only hash collisions walk the (already sorted) term lists. *)
let equal a b =
  a == b || (a.hash = b.hash && List.equal Rule_term.equal_syntactic a.terms b.terms)

let equal_syntactic = equal

let find_attr t attr =
  List.find_opt (fun term -> String.equal (Rule_term.attr term) attr) t.terms
  |> Option.map Rule_term.value

(* Restriction of the rule to the given attributes, e.g. projecting a
   seven-term audit rule onto (data, purpose, authorized).  None when no
   term survives. *)
let project t ~attrs =
  match List.filter (fun term -> List.mem (Rule_term.attr term) attrs) t.terms with
  | [] -> None
  | survivors -> Some (make survivors)

let is_ground vocab t = List.for_all (Rule_term.is_ground vocab) t.terms

(* Corollary 1: the ground rules derivable from this rule — the cartesian
   product of its terms' ground sets.  Product elements go back through
   [make]: a rule may carry several terms over the same attribute whose
   ground sets overlap, so canonicalisation (sort + dedup) is still
   required. *)
let product_of_ground_sets per_term =
  List.fold_right
    (fun choices acc ->
      List.concat_map (fun term -> List.map (fun rest -> term :: rest) acc) choices)
    per_term [ [] ]
  |> List.map make

(* The memo-free path, faithful to the seed: per-call taxonomy walks
   ([Vocab.ground_set_uncached]), no rule-level cache.  Kept as the oracle
   for differential tests and the benchmark baseline. *)
let ground_rules_uncached vocab t : t list =
  product_of_ground_sets
    (List.map
       (fun term ->
         List.map
           (fun value -> Rule_term.make ~attr:(Rule_term.attr term) ~value)
           (Vocabulary.Vocab.ground_set_uncached vocab ~attr:(Rule_term.attr term)
              ~value:(Rule_term.value term)))
       t.terms)

(* Memo table for grounding, keyed by (vocabulary stamp, rule).  Stamps are
   process-unique and a new vocabulary always carries a new stamp, so stale
   entries are unreachable (see Vocab).  The table is reset wholesale when
   it outgrows [ground_cache_limit] — a crude bound that keeps entries for
   dead vocabularies from accumulating without a weak-reference scheme. *)
module Ground_cache = Hashtbl.Make (struct
  type nonrec t = int * t

  let equal (stamp_a, rule_a) (stamp_b, rule_b) = stamp_a = stamp_b && equal rule_a rule_b
  let hash (stamp, rule) = combine_hash stamp rule.hash
end)

let ground_cache : t list Ground_cache.t = Ground_cache.create 4096
let ground_cache_limit = 1 lsl 16

(* One O(1) memo probe per rule occurrence — audit policies repeat the
   same (mostly ground) rules thousands of times, so even the ground
   short-circuit is worth caching rather than re-testing per term. *)
let ground_rules vocab t : t list =
  let key = (Vocabulary.Vocab.stamp vocab, t) in
  match Ground_cache.find_opt ground_cache key with
  | Some ground -> ground
  | None ->
    let ground =
      if is_ground vocab t then [ t ]
      else product_of_ground_sets (List.map (Rule_term.ground_set vocab) t.terms)
    in
    if Ground_cache.length ground_cache >= ground_cache_limit then
      Ground_cache.reset ground_cache;
    Ground_cache.add ground_cache key ground;
    ground

(* Definition 6: same cardinality, and every term of [a] is equivalent to
   some term of [b]. *)
let equivalent vocab a b =
  cardinality a = cardinality b
  && List.for_all (fun x -> List.exists (Rule_term.equivalent vocab x) b.terms) a.terms

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any " @<1>∧ ") Rule_term.pp) t.terms

let to_string t = Fmt.str "%a" pp t

(* Compact rendering in the paper's use-case notation, e.g.
   "Referral:Registration:Nurse" for the pattern attributes. *)
let to_compact_string ?attrs t =
  let values =
    match attrs with
    | Some attrs -> List.filter_map (find_attr t) attrs
    | None -> List.map Rule_term.value t.terms
  in
  String.concat ":" values
