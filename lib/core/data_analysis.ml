(* Algorithm 5: dataAnalysis(P, A, f, c).

   Translates the analysis parameters into the SQL statement of the paper —

     SELECT A1,..,An FROM P's table
     GROUP BY A1,..,An
     HAVING COUNT( * ) >= f AND c

   — and executes it on the relational engine.  The paper writes
   "COUNT( * ) > f" in the pseudocode but "occurred at least f times" in the
   prose (and the Section 5 pattern occurs exactly f = 5 times), so the
   comparator defaults to [>=] and is configurable. *)

type comparator =
  | At_least (* COUNT( * ) >= f : matches the narrative and Section 5 *)
  | More_than (* COUNT( * ) > f  : matches the pseudocode literally *)

type config = {
  attributes : string list; (* A: subset of the audit schema *)
  min_frequency : int; (* f: system-defined threshold, default 5 *)
  comparator : comparator;
  condition : string option; (* c: extra HAVING conjunct, SQL text *)
}

(* The defaults of Algorithm 4: A = pattern attributes, f = 5,
   c = COUNT(DISTINCT user) > 1. *)
let default_config =
  { attributes = Vocabulary.Audit_attrs.pattern;
    min_frequency = 5;
    comparator = At_least;
    condition = Some (Printf.sprintf "COUNT(DISTINCT %s) > 1" Vocabulary.Audit_attrs.user);
  }

(* Materialise a policy of audit rules as a relational table; every column
   is TEXT, one per attribute appearing in the policy's rules. *)
let materialize engine ~table_name (p : Policy.t) =
  let attrs =
    List.fold_left
      (fun acc rule ->
        List.fold_left
          (fun acc (attr, _) -> if List.mem attr acc then acc else acc @ [ attr ])
          acc (Rule.to_assoc rule))
      [] (Policy.rules p)
  in
  let db = Relational.Engine.database engine in
  if Relational.Database.table_exists db table_name then
    Relational.Database.drop_table db table_name;
  let columns = List.map (fun a -> (a, Relational.Value.T_string)) attrs in
  let tbl = Relational.Engine.create_table engine ~name:table_name ~columns in
  List.iter
    (fun rule ->
      let assoc = Rule.to_assoc rule in
      let row =
        List.map
          (fun attr ->
            match List.assoc_opt attr assoc with
            | Some v -> Relational.Value.Str v
            | None -> Relational.Value.Null)
          attrs
      in
      Relational.Table.insert tbl (Relational.Row.of_list row))
    (Policy.rules p);
  attrs

(* Render the statement of Algorithm 5, line 2. *)
let statement ~table_name config =
  let attrs = String.concat ", " config.attributes in
  let op = match config.comparator with At_least -> ">=" | More_than -> ">" in
  let having =
    Printf.sprintf "COUNT(*) %s %d%s" op config.min_frequency
      (match config.condition with Some c -> " AND " ^ c | None -> "")
  in
  Printf.sprintf "SELECT %s FROM %s GROUP BY %s HAVING %s" attrs table_name attrs having

(* [run engine ~table_name config] executes the generated statement and
   returns each surviving group as a rule over [config.attributes]. *)
let run ?budget engine ~table_name config : Rule.t list =
  let sql = statement ~table_name config in
  let result = Relational.Engine.query ?budget engine sql in
  List.map
    (fun row ->
      Rule.make
        (List.mapi
           (fun i attr ->
             let value = Relational.Value.to_string (Relational.Row.get row i) in
             Rule_term.make ~attr ~value)
           config.attributes))
    result.Relational.Executor.rows

(* One-call variant: load the practice policy into a fresh engine and
   analyse it there. *)
let analyse ?(config = default_config) ?budget (practice : Policy.t) : Rule.t list =
  (* An empty practice materialises as a zero-column table the GROUP BY
     cannot reference — and no pattern can meet a positive frequency
     threshold anyway (found by the chaos harness: refining over a window
     whose only site was down). *)
  if Policy.cardinality practice = 0 then []
  else
  let engine = Relational.Engine.create () in
  let table_name = "practice" in
  let _ = materialize engine ~table_name practice in
  run ?budget engine ~table_name config

(* --- governed execution --- *)

type governed = {
  patterns : Rule.t list;
  degraded : bool;
  stats : Relational.Errors.budget_stats;
}

let exact patterns =
  { patterns; degraded = false; stats = { Relational.Errors.rows_out = 0; tuples = 0; ticks = 0 } }

(* Budgeted Algorithm 5 with graceful degradation: try the query under a
   strict budget; if a quota fires, retry the same limits in partial mode.
   The partial run computes the groups over a prefix of the practice table,
   so the returned pattern set is a *lower bound* on the real one —
   [degraded] tells the caller to qualify anything derived from it
   ([Coverage.Lower_bound] in the refinement loop).  Cancellation is not a
   degradation: [Errors.Cancelled] propagates from either attempt. *)
let run_governed ?cancel engine ~table_name ~limits config : governed =
  let budget = Relational.Budget.create ?cancel limits in
  match run ~budget engine ~table_name config with
  | patterns ->
    { patterns; degraded = false; stats = Relational.Budget.stats budget }
  | exception Relational.Errors.Budget_exceeded _ ->
    let budget = Relational.Budget.create ~mode:Relational.Budget.Partial ?cancel limits in
    let patterns = run ~budget engine ~table_name config in
    { patterns;
      degraded = Relational.Budget.truncated budget;
      stats = Relational.Budget.stats budget;
    }

let analyse_governed ?(config = default_config) ?cancel ~limits (practice : Policy.t) :
    governed =
  if Policy.cardinality practice = 0 then exact []
  else
  let engine = Relational.Engine.create () in
  let table_name = "practice" in
  let _ = materialize engine ~table_name practice in
  run_governed ?cancel engine ~table_name ~limits config
