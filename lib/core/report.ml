(* Human-readable reporting: coverage statements, pattern tables, epoch
   summaries and the ASCII coverage trajectory used to render the Figure 2
   style series in benches and examples. *)

let pp_pattern ppf rule =
  Fmt.pf ppf "%s"
    (String.capitalize_ascii
       (Rule.to_compact_string ~attrs:Vocabulary.Audit_attrs.pattern rule))

let pp_patterns ppf = function
  | [] -> Fmt.pf ppf "  (none)@."
  | patterns ->
    List.iteri (fun i p -> Fmt.pf ppf "  %d. %a@." (i + 1) pp_pattern p) patterns

let pp_epoch ppf (r : Refinement.epoch_report) =
  Fmt.pf ppf "practice entries : %d@." r.Refinement.practice_size;
  Fmt.pf ppf "patterns found   :@.";
  pp_patterns ppf r.Refinement.patterns;
  Fmt.pf ppf "useful (pruned)  :@.";
  pp_patterns ppf r.Refinement.useful;
  Fmt.pf ppf "accepted         :@.";
  pp_patterns ppf r.Refinement.accepted;
  Fmt.pf ppf "coverage         : %a -> %a@." Coverage.pp_stats r.Refinement.coverage_before
    Coverage.pp_stats r.Refinement.coverage_after;
  if r.Refinement.degraded then
    Fmt.pf ppf
      "degraded         : extraction hit its resource budget (%s); patterns are a lower \
       bound@."
      (Relational.Errors.stats_to_string r.Refinement.budget_stats);
  match r.Refinement.qualifier with
  | Coverage.Exact -> ()
  | Coverage.Lower_bound _ as q ->
    Fmt.pf ppf "qualifier        : %a — figures are floors, not measurements@."
      Coverage.pp_qualifier q

(* A row-per-epoch series, e.g.
     epoch  1 |############............| 48.0%
   for rendering coverage trajectories on a terminal. *)
let pp_series ?(width = 40) ppf (series : (string * float) list) =
  List.iter
    (fun (label, fraction) ->
      let filled = int_of_float (Float.round (fraction *. float_of_int width)) in
      let filled = max 0 (min width filled) in
      Fmt.pf ppf "%-10s |%s%s| %5.1f%%@." label (String.make filled '#')
        (String.make (width - filled) '.')
        (100. *. fraction))
    series

let pp_audit_table ppf (rules : Rule.t list) =
  let attrs = Vocabulary.Audit_attrs.all in
  let header = List.map String.capitalize_ascii attrs in
  let rows =
    List.map
      (fun rule ->
        List.map
          (fun attr -> Option.value (Rule.find_attr rule attr) ~default:"-")
          attrs)
      rules
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length h) rows)
      header
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line cells = String.concat " | " (List.map2 pad cells widths) in
  Fmt.pf ppf "%s@." (line header);
  Fmt.pf ppf "%s@." (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Fmt.pf ppf "%s@." (line row)) rows
