(* Algorithm 4: extractPatterns(P, V).

   Sets the analysis parameters (attribute projection A, threshold
   frequency f, condition c) and delegates to the data-analysis routine.
   The routine's interface is deliberately pluggable — the paper notes it
   "allows the extractPatterns algorithm to evolve"; besides the SQL
   backend of Algorithm 5 we provide the frequent-pattern-mining backend
   ([18], the paper's future work) which also finds cross-attribute
   correlations the fixed GROUP BY cannot. *)

type backend =
  | Sql of Data_analysis.config
  | Mining of mining_config

and mining_config = {
  attributes : string list;
  min_support : int;
  distinct_users : bool; (* require the support to span more than one user *)
  algorithm : [ `Apriori | `Fp_growth ];
}

let default_mining =
  { attributes = Vocabulary.Audit_attrs.pattern;
    min_support = 5;
    distinct_users = true;
    algorithm = `Apriori;
  }

let default_backend = Sql Data_analysis.default_config

(* Transactions for the miner: one per practice rule, restricted to the
   analysis attributes (user kept aside for the distinct-user condition). *)
let to_transactions attributes (practice : Policy.t) =
  let items_of rule =
    Rule.to_assoc rule
    |> List.filter (fun (attr, _) -> List.mem attr attributes)
    |> List.map (fun (attr, value) -> { Mining.Itemset.attr; value })
  in
  Mining.Transactions.of_item_lists (List.map items_of (Policy.rules practice))

let users_supporting (practice : Policy.t) (pattern : Rule.t) =
  let pattern_assoc = Rule.to_assoc pattern in
  Policy.rules practice
  |> List.filter_map (fun rule ->
         let assoc = Rule.to_assoc rule in
         let matches =
           List.for_all (fun (a, v) -> List.assoc_opt a assoc = Some v) pattern_assoc
         in
         if matches then List.assoc_opt Vocabulary.Audit_attrs.user assoc else None)
  |> List.sort_uniq String.compare

let run_mining config (practice : Policy.t) : Rule.t list =
  let tx = to_transactions config.attributes practice in
  let frequents =
    match config.algorithm with
    | `Apriori -> Mining.Apriori.mine tx ~min_support:config.min_support
    | `Fp_growth -> Mining.Fp_growth.mine tx ~min_support:config.min_support
  in
  (* Full-width itemsets correspond to the GROUP BY patterns of the SQL
     backend: one item per analysis attribute. *)
  let width = List.length config.attributes in
  let interner = Mining.Transactions.interner tx in
  frequents
  |> List.filter (fun (f : Mining.Apriori.frequent) -> Mining.Itemset.size f.itemset = width)
  |> List.map (fun (f : Mining.Apriori.frequent) ->
         Rule.make
           (List.map
              (fun id ->
                let item = Mining.Itemset.item_of_id interner id in
                Rule_term.make ~attr:item.Mining.Itemset.attr ~value:item.Mining.Itemset.value)
              (Mining.Itemset.to_list f.itemset)))
  |> List.filter (fun pattern ->
         (not config.distinct_users) || List.length (users_supporting practice pattern) > 1)

(* [run ?backend practice] returns the candidate patterns found in the
   practice entries. *)
let run ?(backend = default_backend) (practice : Policy.t) : Rule.t list =
  match backend with
  | Sql config -> Data_analysis.analyse ~config practice
  | Mining config -> run_mining config practice

(* Budgeted variant: the SQL backend runs under the governor and degrades
   to a lower-bound pattern set when the budget fires (see
   {!Data_analysis.run_governed}).  The mining backend works in-memory
   outside the relational engine, so it is not governed: its result is
   always exact. *)
let run_governed ?(backend = default_backend) ?cancel ~limits (practice : Policy.t) :
    Data_analysis.governed =
  match backend with
  | Sql config -> Data_analysis.analyse_governed ~config ?cancel ~limits practice
  | Mining config -> Data_analysis.exact (run_mining config practice)

(* Beyond patterns: association rules across attribute pairs — the "bit more
   sophisticated inference" of Section 5's future work.  Returns rules with
   their confidence. *)
let correlations ?(attributes = Vocabulary.Audit_attrs.pattern) ?(min_support = 5)
    ?(min_confidence = 0.8) (practice : Policy.t) =
  let tx = to_transactions attributes practice in
  let frequents = Mining.Apriori.mine tx ~min_support in
  let rules = Mining.Assoc_rules.derive tx frequents ~min_confidence in
  (Mining.Transactions.interner tx, Mining.Assoc_rules.sort_by_confidence rules)
