(** RuleTerm (Definition 1): an (attribute, value) pair — the atomic unit
    every privacy policy notation maps onto. *)

type t

val make : attr:string -> value:string -> t
val attr : t -> string
val value : t -> string

val equal_syntactic : t -> t -> bool
(** Structural identity (no vocabulary involved).  O(1) on the fast path:
    strings are interned and the hash is precomputed, so distinct terms are
    rejected by hash and equal terms accepted by pointer comparison. *)

val compare : t -> t -> int
(** Total order by attribute then value; canonicalises rules. *)

val hash : t -> int
(** Precomputed structural hash, O(1). *)

val is_ground : Vocabulary.Vocab.t -> t -> bool
(** Definition 2: the value is atomic w.r.t. the vocabulary.  Values (or
    attributes) outside the vocabulary are ground by convention. *)

val ground_set : Vocabulary.Vocab.t -> t -> t list
(** Definition 3: the set RT' of ground terms derivable from this term.
    Always non-empty; a ground term grounds to itself. *)

val equivalent : Vocabulary.Vocab.t -> t -> t -> bool
(** Definition 4: the ground sets share a member.  Terms over different
    attributes are never equivalent. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
