(** Rule (Definition 5): a conjunction of RuleTerms.

    Terms are kept sorted and deduplicated, so structurally equal ground
    rules compare equal — which makes range sets (Definition 8) well
    defined. *)

type t

val make : Rule_term.t list -> t
(** @raise Invalid_argument on the empty conjunction. *)

val of_assoc : (string * string) list -> t
(** [of_assoc [(attr, value); ...]]. *)

val to_assoc : t -> (string * string) list
val terms : t -> Rule_term.t list

val cardinality : t -> int
(** #R of Definition 5. *)

val compare : t -> t -> int
(** Lexicographic over the sorted terms — the total order range sets and
    deterministic listings rely on. *)

val equal : t -> t -> bool
(** Structural equality, O(1) on the fast path: pointer equality accepts
    and precomputed-hash inequality rejects. *)

val equal_syntactic : t -> t -> bool
(** Alias of {!equal}. *)

val hash : t -> int
(** Precomputed structural hash, O(1).  Consistent with {!equal}. *)

val find_attr : t -> string -> string option
(** The value this rule assigns to [attr], if any. *)

val project : t -> attrs:string list -> t option
(** Restriction to the given attributes; [None] when no term survives. *)

val is_ground : Vocabulary.Vocab.t -> t -> bool

val ground_rules : Vocabulary.Vocab.t -> t -> t list
(** Corollary 1: the cartesian product of the terms' ground sets.
    Memoized per (vocabulary stamp, rule); vocabularies are immutable and
    freshly stamped on every construction, so entries never go stale. *)

val ground_rules_uncached : Vocabulary.Vocab.t -> t -> t list
(** The memo-free grounding path — the seed implementation, kept as the
    oracle for differential tests and benchmark baselines. *)

val equivalent : Vocabulary.Vocab.t -> t -> t -> bool
(** Definition 6: same cardinality and termwise equivalence. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_compact_string : ?attrs:string list -> t -> string
(** The paper's use-case notation, e.g. ["referral:registration:nurse"];
    [attrs] selects and orders the rendered values. *)
