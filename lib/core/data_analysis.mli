(** dataAnalysis (Algorithm 5): translate (A, f, c) into the SQL statement

    {v SELECT A1,..,An FROM <table> GROUP BY A1,..,An
   HAVING COUNT( * ) >= f AND c v}

    and execute it on the relational engine. *)

type comparator =
  | At_least
      (** [COUNT( * ) >= f] — matches the paper's prose ("occurred at least
          f times") and the Section 5 walkthrough, where the pattern occurs
          exactly f = 5 times. *)
  | More_than  (** [COUNT( * ) > f] — the pseudocode read literally. *)

type config = {
  attributes : string list;  (** A: a subset of the audit schema *)
  min_frequency : int;  (** f: the system-defined threshold *)
  comparator : comparator;
  condition : string option;  (** c: extra HAVING conjunct, SQL text *)
}

val default_config : config
(** Algorithm 4's defaults: A = (data, purpose, authorized), f = 5,
    c = [COUNT(DISTINCT user) > 1], at-least comparator. *)

val materialize : Relational.Engine.t -> table_name:string -> Policy.t -> string list
(** Loads a policy of audit rules into a (re)created TEXT table, one column
    per attribute appearing in the rules; returns the column order. *)

val statement : table_name:string -> config -> string
(** The generated SQL text (Algorithm 5, line 2). *)

val run :
  ?budget:Relational.Budget.t -> Relational.Engine.t -> table_name:string -> config ->
  Rule.t list
(** Executes the statement; each surviving group becomes a rule over
    [config.attributes].  [budget] governs the query (see
    {!Relational.Budget}); omitted, execution is ungoverned. *)

val analyse : ?config:config -> ?budget:Relational.Budget.t -> Policy.t -> Rule.t list
(** One-call variant: materialise into a fresh engine and run there. *)

(** {1 Governed execution with graceful degradation} *)

type governed = {
  patterns : Rule.t list;
  degraded : bool;
      (** the strict run exceeded its budget and the patterns were computed
          over a prefix of the practice table — a lower bound *)
  stats : Relational.Errors.budget_stats;  (** resources the run consumed *)
}

val exact : Rule.t list -> governed
(** Wraps an ungoverned result: [degraded = false], zero stats. *)

val run_governed :
  ?cancel:Relational.Budget.cancel ->
  Relational.Engine.t ->
  table_name:string ->
  limits:Relational.Budget.limits ->
  config ->
  governed
(** Budgeted Algorithm 5: strict attempt first; when a quota fires, the
    same limits are retried in partial mode and the truncated pattern set
    is returned with [degraded = true].  Cancellation propagates as
    {!Relational.Errors.Cancelled} from either attempt. *)

val analyse_governed :
  ?config:config ->
  ?cancel:Relational.Budget.cancel ->
  limits:Relational.Budget.limits ->
  Policy.t ->
  governed
(** {!run_governed} against a fresh engine. *)
