(** ComputeCoverage (Definition 9 / Algorithm 1).

    Coverage of P_x in relation to P_y is
    [#(Range(P_x) ∩ Range(P_y)) / #Range(P_y)].

    Two denominators coexist in the paper and both are provided:
    {!compute} is Definition 9 verbatim (ranges are sets — Figure 3's
    3/6 = 50 %); {!compute_bag} counts each rule occurrence of P_y, which
    is how Section 5 arrives at 3/10 = 30 % for Table 1. *)

type stats = {
  overlap : int;  (** numerator *)
  denominator : int;
  coverage : float;  (** 1.0 when the denominator is 0 (vacuous) *)
  uncovered : Rule.t list;  (** the rules of P_y driving the gap *)
}

val compute : ?uncovered:bool -> Vocabulary.Vocab.t -> p_x:Policy.t -> p_y:Policy.t -> stats
(** Algorithm 1, set semantics.  Policies over different attribute sets
    never intersect (Definition 6 compares cardinalities) — align them with
    {!Policy.project} or use {!aligned}.

    [uncovered] (default [true]) controls whether the uncovered listing is
    produced.  With [~uncovered:false] the [uncovered] field is [[]] and
    Range(P_y) is only counted, never materialised
    ({!Range.cardinality_of_rules}) — the fast path for monitoring loops
    that only read the ratio. *)

val compute_bag : Vocabulary.Vocab.t -> p_x:Policy.t -> p_y:Policy.t -> stats
(** Bag semantics over P_y's rule sequence: a rule occurrence is covered
    when its whole ground set lies in Range(P_x). *)

val aligned :
  ?bag:bool ->
  ?uncovered:bool ->
  Vocabulary.Vocab.t ->
  attrs:string list ->
  p_x:Policy.t ->
  p_y:Policy.t ->
  stats
(** Projects both policies onto [attrs] first, then computes coverage
    ([bag] defaults to false; [uncovered] as in {!compute}, ignored under
    bag semantics where the partition is a by-product). *)

val complete : Vocabulary.Vocab.t -> p_x:Policy.t -> p_y:Policy.t -> bool
(** Definition 10: Range(P_y) ⊆ Range(P_x). *)

val pp_stats : Format.formatter -> stats -> unit
(** e.g. ["coverage = 3/10 = 30%"]. *)

type qualifier =
  | Exact
  | Lower_bound of float
      (** the completeness fraction of the audit window, in [0, 1) *)

type qualified = {
  stats : stats;
  qualifier : qualifier;
}
(** A coverage measurement together with how much of the audit trail it was
    computed from.  A measurement over a partial P_AL (sites skipped,
    records quarantined) is only a statement about the entries that
    arrived: it is a lower bound, and must never drive pruning decisions —
    a pattern can look "already covered" only because its counter-evidence
    is missing. *)

val qualify : ?verified:bool -> completeness:float -> stats -> qualified
(** [Exact] when [completeness >= 1.0] and the trail is [verified]
    (default); [Lower_bound completeness] otherwise.  Pass
    [~verified:false] when the trail itself is suspect — e.g. crash
    recovery dropped an unverifiable WAL tail — to force the lower-bound
    label even over a nominally complete window. *)

val is_exact : qualified -> bool
val pp_qualifier : Format.formatter -> qualifier -> unit

val pp_qualified : Format.formatter -> qualified -> unit
(** e.g. ["coverage >= 3/10 = 30% (partial trail, completeness 83.3%)"]. *)
