(** extractPatterns (Algorithm 4): set the analysis parameters and delegate
    to a data-analysis backend.

    The backend interface is deliberately pluggable — the paper notes it
    "allows the extractPatterns algorithm to evolve".  Besides the SQL
    backend of Algorithm 5 there is the frequent-pattern-mining backend the
    paper proposes as future work ([18]), which also finds cross-attribute
    correlations a fixed GROUP BY cannot. *)

type backend =
  | Sql of Data_analysis.config
  | Mining of mining_config

and mining_config = {
  attributes : string list;
  min_support : int;  (** absolute support, playing f's role *)
  distinct_users : bool;  (** require support spanning more than one user *)
  algorithm : [ `Apriori | `Fp_growth ];
}

val default_mining : mining_config
(** Pattern attributes, support 5, distinct users required, Apriori. *)

val default_backend : backend
(** The SQL backend with {!Data_analysis.default_config}. *)

val to_transactions : string list -> Policy.t -> Mining.Transactions.t
(** One transaction per practice rule, restricted to the given attributes. *)

val users_supporting : Policy.t -> Rule.t -> string list
(** Distinct users whose practice entries match the pattern. *)

val run : ?backend:backend -> Policy.t -> Rule.t list
(** The candidate patterns found in the practice entries. *)

val run_governed :
  ?backend:backend ->
  ?cancel:Relational.Budget.cancel ->
  limits:Relational.Budget.limits ->
  Policy.t ->
  Data_analysis.governed
(** Budgeted {!run}: the SQL backend executes under the resource governor
    and degrades to a lower-bound pattern set when the budget fires; the
    in-memory mining backend is not governed and always returns an exact
    result. *)

val correlations :
  ?attributes:string list ->
  ?min_support:int ->
  ?min_confidence:float ->
  Policy.t ->
  Mining.Itemset.interner * Mining.Assoc_rules.rule list
(** Association rules across attribute pairs — the "bit more sophisticated
    inference" of the paper's future work.  Sorted by confidence. *)
