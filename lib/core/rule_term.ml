(* Definition 1: a RuleTerm is an (attr, value) pair — the atomic unit every
   policy notation maps onto.

   Terms are the unit of work in grounding and range algebra, so they carry
   a precomputed structural hash, and their strings are interned: every
   attr/value string that enters through [make] is replaced by a canonical
   copy.  Equal strings are then physically equal, which turns the common
   case of term comparison and equality into pointer checks. *)

type t = {
  attr : string;
  value : string;
  hash : int;
}

(* The intern table only ever grows with *distinct* strings that appear in
   rules; vocabularies and audit attributes draw from small fixed alphabets,
   so this stays proportional to the vocabulary, not the audit volume. *)
let intern_table : (string, string) Hashtbl.t = Hashtbl.create 1024

let intern s =
  match Hashtbl.find_opt intern_table s with
  | Some canonical -> canonical
  | None ->
    Hashtbl.add intern_table s s;
    s

let combine_hash h1 h2 = (h1 * 0x01000193) lxor h2

let make ~attr ~value =
  let attr = intern attr in
  let value = intern value in
  { attr; value; hash = combine_hash (Hashtbl.hash attr) (Hashtbl.hash value) }

let attr t = t.attr

let value t = t.value

let hash t = t.hash

(* Syntactic identity, used to canonicalise ground rules.  Interning makes
   the [==] checks decisive for terms built through [make]; the [String.equal]
   fallback keeps the function correct regardless. *)
let equal_syntactic a b =
  a == b
  || (a.hash = b.hash
     && (a.attr == b.attr || String.equal a.attr b.attr)
     && (a.value == b.value || String.equal a.value b.value))

let compare a b =
  if a == b then 0
  else begin
    let c = if a.attr == b.attr then 0 else String.compare a.attr b.attr in
    if c <> 0 then c
    else if a.value == b.value then 0
    else String.compare a.value b.value
  end

(* Definition 2: ground iff the value is atomic w.r.t. the vocabulary. *)
let is_ground vocab t = Vocabulary.Vocab.is_ground vocab ~attr:t.attr ~value:t.value

(* Definition 3: the set RT' of ground terms derivable from this term. *)
let ground_set vocab t =
  List.map
    (fun value -> make ~attr:t.attr ~value)
    (Vocabulary.Vocab.ground_set vocab ~attr:t.attr ~value:t.value)

(* Definition 4: terms are equivalent iff their ground sets share a member
   with equal attr and value.  Terms over different attributes are never
   equivalent. *)
let equivalent vocab a b =
  String.equal a.attr b.attr
  && Vocabulary.Vocab.equivalent_values vocab ~attr:a.attr a.value b.value

let pp ppf t = Fmt.pf ppf "(%s, %s)" t.attr t.value

let to_string t = Fmt.str "%a" pp t
