(* The PRIMA policy-refinement component (Figure 4), at the policy level:
   it owns the policy store P_PS, consumes consolidated audit rules from
   Audit Management as P_AL, enforces a training period, and exposes
   coverage measurement and refinement runs.  The stakeholder-facing
   integration with HDB enforcement lives in the prima_system library. *)

type t = {
  mutable vocab : Vocabulary.Vocab.t;
  mutable p_ps : Policy.t;
  mutable p_al : Policy.t;
  mutable training_minimum : int; (* entries required before refinement *)
  mutable refinement_config : Refinement.config;
  mutable history : Refinement.epoch_report list; (* newest first *)
}

let create ?(training_minimum = 0) ?(config = Refinement.default_config) ~vocab ~p_ps () =
  { vocab;
    p_ps;
    p_al = Policy.make ~source:Policy.Audit_log [];
    training_minimum;
    refinement_config = config;
    history = [];
  }

let vocab t = t.vocab

(* Adopt an edited vocabulary (e.g. a taxonomy that grew a leaf mid-run).
   Vocabulary values are immutable and freshly stamped, so every grounding
   cache keyed by the old stamp goes cold at once — subsequent coverage
   readings must be indistinguishable from a from-scratch recompute. *)
let set_vocab t vocab = t.vocab <- vocab

let policy_store t = t.p_ps
let audit_policy t = t.p_al
let history t = List.rev t.history

let set_training_minimum t n = t.training_minimum <- n
let refinement_config t = t.refinement_config
let set_refinement_config t config = t.refinement_config <- config

let ingest_rule t rule = t.p_al <- Policy.add_rule t.p_al rule

let ingest_rules t rules = t.p_al <- Policy.add_rules t.p_al rules

let add_store_rule t rule = t.p_ps <- Policy.add_rule t.p_ps rule

(* Both coverage readings of the paper at once. *)
type coverage_report = {
  set_semantics : Coverage.stats; (* Definition 9 *)
  bag_semantics : Coverage.stats; (* Section 5 accounting *)
}

let coverage t =
  let attrs = Vocabulary.Audit_attrs.pattern in
  { set_semantics =
      Coverage.aligned ~bag:false t.vocab ~attrs ~p_x:t.p_ps ~p_y:t.p_al;
    bag_semantics = Coverage.aligned ~bag:true t.vocab ~attrs ~p_x:t.p_ps ~p_y:t.p_al;
  }

let in_training t = Policy.cardinality t.p_al < t.training_minimum

(* Run one refinement pass over everything collected so far; the accepted
   patterns extend the policy store in place.  [Error] while the training
   period has not accumulated enough log.  [completeness] qualifies the
   epoch's coverage readings when P_AL came from a partial consolidation. *)
let refine ?(completeness = 1.0) ?(verified = true) t :
    (Refinement.epoch_report, string) result =
  if in_training t then
    Error
      (Printf.sprintf "training period: %d/%d audit entries collected"
         (Policy.cardinality t.p_al) t.training_minimum)
  else begin
    let report =
      Refinement.run_epoch ~config:t.refinement_config ~completeness ~verified
        ~vocab:t.vocab ~p_ps:t.p_ps ~p_al:t.p_al ()
    in
    t.p_ps <- report.Refinement.p_ps';
    t.history <- report :: t.history;
    Ok report
  end

(* Drop consumed audit entries (e.g. after an epoch over a sliding window). *)
let reset_audit t = t.p_al <- Policy.make ~source:Policy.Audit_log []
