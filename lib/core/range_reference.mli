(** The seed's set-based Range (Definition 8), kept as the oracle.

    Same surface and semantics as {!Range}, but represented as a
    [Set.Make(Rule)] built with memo-free grounding.  Used by the parity
    property tests and the coverage-scaling benchmark baseline; production
    code should use {!Range}. *)

type t

val empty : t
val of_rules : Vocabulary.Vocab.t -> Rule.t list -> t
val of_policy : Vocabulary.Vocab.t -> Policy.t -> t

val cardinality : t -> int
(** #Range of Definition 8. *)

val mem : Rule.t -> t -> bool
(** Membership of a (canonical, ground) rule. *)

val inter : t -> t -> t
val diff : t -> t -> t
val union : t -> t -> t
val subset : t -> t -> bool
val elements : t -> Rule.t list
val is_empty : t -> bool

val covers : Vocabulary.Vocab.t -> t -> Rule.t -> bool
(** Every ground instance of the rule lies in the range. *)

val intersects : Vocabulary.Vocab.t -> t -> Rule.t -> bool
(** Some ground instance of the rule lies in the range. *)

val pp : Format.formatter -> t -> unit
