(* Definition 8: the range of a policy is the set of all ground rules
   derivable from its rules under the vocabulary.  Represented as a hash
   set of canonicalised ground rules keyed by the rules' precomputed
   hashes, so building a range is O(1) amortised per ground rule and the
   Definition 6 intersection of Algorithm 1 reduces to hash lookups —
   against the seed's balanced set this removes a log factor *and* the
   per-comparison term-list walks.

   Ranges are observably immutable: every operation builds a fresh table
   and no function ever mutates an argument after it escapes, so values
   can be shared freely (the [empty] constant relies on this).
   [Range_reference] preserves the seed implementation; the parity
   property suite asserts both agree exactly. *)

module Rule_tbl = Hashtbl.Make (struct
  type t = Rule.t

  let equal = Rule.equal
  let hash = Rule.hash
end)

type t = unit Rule_tbl.t

let empty : t = Rule_tbl.create 1

let of_rules vocab rules : t =
  let tbl = Rule_tbl.create (max 64 (List.length rules)) in
  List.iter
    (fun rule ->
      List.iter (fun g -> Rule_tbl.replace tbl g ()) (Rule.ground_rules vocab rule))
    rules;
  tbl

let of_policy vocab policy : t = of_rules vocab (Policy.rules policy)

let cardinality = Rule_tbl.length

let mem rule t = Rule_tbl.mem t rule

let is_empty t = Rule_tbl.length t = 0

(* Intersection iterates the smaller side and probes the larger. *)
let inter a b : t =
  let small, large = if cardinality a <= cardinality b then (a, b) else (b, a) in
  let tbl = Rule_tbl.create (cardinality small) in
  Rule_tbl.iter (fun rule () -> if Rule_tbl.mem large rule then Rule_tbl.replace tbl rule ()) small;
  tbl

let diff a b : t =
  let tbl = Rule_tbl.create (max 1 (cardinality a)) in
  Rule_tbl.iter (fun rule () -> if not (Rule_tbl.mem b rule) then Rule_tbl.replace tbl rule ()) a;
  tbl

let union a b : t =
  let tbl = Rule_tbl.create (cardinality a + cardinality b) in
  Rule_tbl.iter (fun rule () -> Rule_tbl.replace tbl rule ()) a;
  Rule_tbl.iter (fun rule () -> Rule_tbl.replace tbl rule ()) b;
  tbl

exception Not_subset

let subset a b =
  cardinality a <= cardinality b
  && (try
        Rule_tbl.iter (fun rule () -> if not (Rule_tbl.mem b rule) then raise Not_subset) a;
        true
      with Not_subset -> false)

(* Sorted by Rule.compare, matching the seed's Set ordering, so listings
   (e.g. Coverage's uncovered rules) stay deterministic. *)
let elements t =
  Rule_tbl.fold (fun rule () acc -> rule :: acc) t [] |> List.sort Rule.compare

let fold f t init = Rule_tbl.fold (fun rule () acc -> f rule acc) t init

(* Is every ground instance of [rule] inside the range?  Membership test
   lifted to possibly-composite rules. *)
let covers vocab t rule = List.for_all (fun g -> mem g t) (Rule.ground_rules vocab rule)

(* Does any ground instance of [rule] fall inside the range? *)
let intersects vocab t rule = List.exists (fun g -> mem g t) (Rule.ground_rules vocab rule)

(* Stream the ground rules of [rules] through a scratch dedup table that is
   dropped on return, counting distinct ground rules and — when [within] is
   given — how many of them fall inside that range.  A single pass gives
   Algorithm 1's numerator and denominator without materialising Range(P_y)
   or the overlap. *)
let count_ground_rules ?within vocab rules : int * int =
  let seen = Rule_tbl.create 1024 in
  let overlap = ref 0 in
  List.iter
    (fun rule ->
      List.iter
        (fun g ->
          if not (Rule_tbl.mem seen g) then begin
            Rule_tbl.add seen g ();
            match within with
            | Some range when mem g range -> incr overlap
            | Some _ | None -> ()
          end)
        (Rule.ground_rules vocab rule))
    rules;
  (Rule_tbl.length seen, !overlap)

(* #Range of a rule list without retaining the range.  With [within], only
   ground rules already inside that range are counted. *)
let cardinality_of_rules ?within vocab rules =
  match within with
  | None -> fst (count_ground_rules vocab rules)
  | Some _ -> snd (count_ground_rules ?within vocab rules)

let pp ppf t =
  Fmt.pf ppf "range (%d ground rules):@." (cardinality t);
  List.iteri (fun i rule -> Fmt.pf ppf "  %d. %a@." (i + 1) Rule.pp rule) (elements t)
