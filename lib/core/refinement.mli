(** Refinement (Algorithm 2): the feedback loop between real and ideal
    policy.

    {v Practice       <- Filter(P_AL)                  (Algorithm 3)
   Patterns       <- extractPatterns(Practice, V)  (Algorithms 4-5)
   usefulPatterns <- Prune(Patterns, P_PS, V)      (Algorithm 6) v}

    plus the human acceptance step the paper mandates after Prune, and an
    epoch driver that folds accepted patterns back into the policy store
    while tracking coverage. *)

type acceptance =
  | Accept_all  (** trusting privacy officer: every useful pattern adopted *)
  | Reject_all  (** audit-only mode: nothing changes *)
  | Oracle of (Rule.t -> bool)
      (** e.g. a ground-truth classifier in experiments, or a human review
          queue in deployment *)

type config = {
  backend : Extract_patterns.backend;
  keep_prohibitions : bool;
  acceptance : acceptance;
  limits : Relational.Budget.limits option;
      (** resource budget for the pattern-extraction query; [None] (the
          default) runs ungoverned.  When the budget fires, extraction
          degrades to a lower-bound pattern set and the epoch's coverage
          readings are labelled {!Coverage.Lower_bound}. *)
}

val default_config : config
(** SQL backend with the paper's defaults, prohibitions dropped,
    accept-all, no resource budget. *)

val useful_patterns :
  ?config:config -> vocab:Vocabulary.Vocab.t -> p_ps:Policy.t -> p_al:Policy.t -> unit ->
  Rule.t list
(** Algorithm 2 verbatim: the useful patterns, before human review. *)

val accept : acceptance -> Rule.t list -> Rule.t list

type epoch_report = {
  practice_size : int;
  patterns : Rule.t list;
  useful : Rule.t list;
  accepted : Rule.t list;
  p_ps' : Policy.t;  (** the store extended with the accepted patterns *)
  coverage_before : Coverage.stats;  (** bag semantics, pattern attributes *)
  coverage_after : Coverage.stats;
  qualifier : Coverage.qualifier;
      (** [Exact] when the epoch saw the whole consolidated trail;
          [Lower_bound] with the window's completeness otherwise — also
          forced when extraction degraded under its resource budget *)
  degraded : bool;
      (** pattern extraction exceeded its budget and retried in partial
          mode: [patterns] covers a prefix of the practice table *)
  budget_stats : Relational.Errors.budget_stats;
      (** resources the extraction query consumed (zeros when ungoverned) *)
}

val run_epoch :
  ?config:config ->
  ?completeness:float ->
  ?verified:bool ->
  vocab:Vocabulary.Vocab.t ->
  p_ps:Policy.t ->
  p_al:Policy.t ->
  unit ->
  epoch_report
(** [completeness] (default 1.0) is the fraction of the audit window that
    was actually consolidated; below 1.0 the report's coverage readings are
    labelled {!Coverage.Lower_bound}.  [verified] (default [true]) states
    whether the trail itself is trustworthy; [false] — e.g. crash recovery
    dropped an unverifiable WAL tail — forces the lower-bound label even at
    completeness 1.0. *)

val run_epochs :
  ?config:config ->
  vocab:Vocabulary.Vocab.t ->
  p_ps:Policy.t ->
  batches:Policy.t list ->
  unit ->
  epoch_report list * Policy.t
(** Iterated refinement over audit batches: each epoch extends the store
    and the next batch is judged against the refined store — the Figure 2
    trajectory.  Returns the per-epoch reports and the final store. *)
