(* The seed's Definition 8 implementation, kept verbatim as the oracle for
   differential testing and benchmark baselines: a balanced set of
   canonicalised ground rules ordered by structural comparison, built with
   memo-free grounding.  [Range] reimplements the same surface on a hash
   set; the property suite asserts the two agree exactly. *)

module Rule_set = Set.Make (struct
  type t = Rule.t

  let compare = Rule.compare
end)

type t = Rule_set.t

let empty = Rule_set.empty

let of_rules vocab rules : t =
  List.fold_left
    (fun acc rule ->
      List.fold_left (fun acc g -> Rule_set.add g acc) acc (Rule.ground_rules_uncached vocab rule))
    Rule_set.empty rules

let of_policy vocab policy : t = of_rules vocab (Policy.rules policy)

let cardinality = Rule_set.cardinal

let mem rule t = Rule_set.mem rule t

let inter = Rule_set.inter

let diff = Rule_set.diff

let union = Rule_set.union

let subset = Rule_set.subset

let elements = Rule_set.elements

let is_empty = Rule_set.is_empty

(* Is every ground instance of [rule] inside the range?  Membership test
   lifted to possibly-composite rules. *)
let covers vocab t rule =
  List.for_all (fun g -> mem g t) (Rule.ground_rules_uncached vocab rule)

(* Does any ground instance of [rule] fall inside the range? *)
let intersects vocab t rule =
  List.exists (fun g -> mem g t) (Rule.ground_rules_uncached vocab rule)

let pp ppf t =
  Fmt.pf ppf "range (%d ground rules):@." (cardinality t);
  List.iteri (fun i rule -> Fmt.pf ppf "  %d. %a@." (i + 1) Rule.pp rule) (elements t)
