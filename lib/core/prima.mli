(** The PRIMA policy-refinement component (Figure 4), at the policy level.

    Owns the policy store P_PS, consumes consolidated audit rules from
    Audit Management as P_AL, enforces a training period, and exposes
    coverage measurement and refinement runs.  The stakeholder-facing
    integration with HDB enforcement is {!Prima_system.System}. *)

type t

val create :
  ?training_minimum:int ->
  ?config:Refinement.config ->
  vocab:Vocabulary.Vocab.t ->
  p_ps:Policy.t ->
  unit ->
  t
(** [training_minimum] is the number of audit entries that must accumulate
    before {!refine} will run (default 0). *)

val vocab : t -> Vocabulary.Vocab.t

val set_vocab : t -> Vocabulary.Vocab.t -> unit
(** Adopt an edited vocabulary mid-run.  Vocabulary values are immutable
    and freshly stamped ({!Vocabulary.Vocab.stamp}), so the grounding
    caches keyed by the old stamp go cold atomically: coverage computed
    after the swap must equal a from-scratch recompute over the same
    policies. *)

val policy_store : t -> Policy.t
val audit_policy : t -> Policy.t

val history : t -> Refinement.epoch_report list
(** All completed refinement runs, oldest first. *)

val set_training_minimum : t -> int -> unit
val refinement_config : t -> Refinement.config
val set_refinement_config : t -> Refinement.config -> unit

val ingest_rule : t -> Rule.t -> unit
(** Append one audit rule to P_AL. *)

val ingest_rules : t -> Rule.t list -> unit

val add_store_rule : t -> Rule.t -> unit
(** Stakeholder-driven extension of P_PS. *)

type coverage_report = {
  set_semantics : Coverage.stats;  (** Definition 9 *)
  bag_semantics : Coverage.stats;  (** Section 5 accounting *)
}

val coverage : t -> coverage_report
(** Both coverage readings, over the pattern attributes. *)

val in_training : t -> bool

val refine :
  ?completeness:float -> ?verified:bool -> t -> (Refinement.epoch_report, string) result
(** One refinement pass over everything collected so far; accepted patterns
    extend the store in place.  [Error] during the training period.
    [completeness] (default 1.0) qualifies the epoch's coverage readings
    when P_AL came from a partial consolidation. *)

val reset_audit : t -> unit
(** Drop consumed audit entries (sliding-window refinement). *)
