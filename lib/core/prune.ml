(* Algorithm 6: Prune(Patterns, P_PS, V).

   Removes the patterns already present in the policy store: the useful
   patterns are the set complement Range(Patterns) \ Range(P_PS).  Both
   ranges are taken over the pattern attributes, so the store's composite
   rules cover their whole subtrees.  The result deliberately stops short
   of auto-adoption — "human input is prudent at this stage" — which is the
   acceptance step in Refinement.

   The store's range is built once per call on the hash-backed Range, and
   grounding the patterns hits the per-rule memo (extraction emits the same
   pattern shapes epoch after epoch), so pruning stays cheap inside the
   refinement loop. *)

let pattern_attrs (patterns : Rule.t list) =
  List.sort_uniq String.compare
    (List.concat_map (fun rule -> List.map Rule_term.attr (Rule.terms rule)) patterns)

let run vocab ~(patterns : Rule.t list) ~(p_ps : Policy.t) : Rule.t list =
  if patterns = [] then []
  else begin
    let attrs = pattern_attrs patterns in
    let range_ps = Range.of_policy vocab (Policy.project p_ps ~attrs) in
    (* A pattern survives when some ground instance of it is uncovered. *)
    List.filter (fun pattern -> not (Range.covers vocab range_ps pattern)) patterns
  end

(* Ground-level variant: exactly getComplement(range_x, range_y), returning
   the uncovered ground rules themselves. *)
let ground_complement vocab ~(patterns : Rule.t list) ~(p_ps : Policy.t) : Rule.t list =
  if patterns = [] then []
  else begin
    let attrs = pattern_attrs patterns in
    let range_ps = Range.of_policy vocab (Policy.project p_ps ~attrs) in
    let range_patterns = Range.of_rules vocab patterns in
    Range.elements (Range.diff range_patterns range_ps)
  end
