(* Definition 9 / Algorithm 1: ComputeCoverage.

   Coverage of P_x in relation to P_y is
     #(Range(P_x) ∩ Range(P_y)) / #Range(P_y).

   Two denominators coexist in the paper and both are provided:

   - [compute] is Definition 9 verbatim — ranges are *sets*, so repeated
     audit entries collapse (Figure 3's 3/6 = 50 %);
   - [compute_bag] counts each rule occurrence of P_y separately, which is
     how Section 5 arrives at 3/10 = 30 % for Table 1 (the pattern entry
     repeats five times).

   Policies over different attribute sets (seven-term audit rules vs
   three-term store rules) never intersect under Definition 6; callers
   align them first with [Policy.project] — [aligned] does this for you. *)

type stats = {
  overlap : int;
  denominator : int;
  coverage : float;
  uncovered : Rule.t list; (* the rules of P_y driving the gap *)
}

let ratio overlap denominator =
  if denominator = 0 then 1.0 else float_of_int overlap /. float_of_int denominator

(* Algorithm 1, set semantics.  When the caller does not need the
   uncovered listing ([~uncovered:false]), Range(P_y) and the overlap are
   only *counted* — streamed in one pass through Range.count_ground_rules —
   never materialised, which is what lets coverage run in the refinement
   inner loop. *)
let compute ?(uncovered = true) vocab ~p_x ~p_y : stats =
  let range_x = Range.of_policy vocab p_x in
  if uncovered then begin
    let range_y = Range.of_policy vocab p_y in
    (* One partitioning sweep over Range(P_y) yields both the overlap count
       and the uncovered listing — no intersection or difference tables. *)
    let overlap, uncov =
      Range.fold
        (fun g (n, uncov) ->
          if Range.mem g range_x then (n + 1, uncov) else (n, g :: uncov))
        range_y (0, [])
    in
    { overlap;
      denominator = Range.cardinality range_y;
      coverage = ratio overlap (Range.cardinality range_y);
      uncovered = List.sort Rule.compare uncov;
    }
  end
  else begin
    let denominator, overlap =
      Range.count_ground_rules ~within:range_x vocab (Policy.rules p_y)
    in
    { overlap; denominator; coverage = ratio overlap denominator; uncovered = [] }
  end

(* Bag semantics over P_y's rule sequence: each occurrence counts, as in the
   Section 5 walkthrough.  A rule is covered when its whole ground set lies
   in Range(P_x). *)
let compute_bag vocab ~p_x ~p_y : stats =
  let range_x = Range.of_policy vocab p_x in
  let rules = Policy.rules p_y in
  let covered, uncovered =
    List.partition (fun rule -> Range.covers vocab range_x rule) rules
  in
  { overlap = List.length covered;
    denominator = List.length rules;
    coverage = ratio (List.length covered) (List.length rules);
    uncovered;
  }

(* Project both policies onto the attributes they share with the
   vocabulary's pattern dimensions before comparing. *)
let aligned ?(bag = false) ?(uncovered = true) vocab ~attrs ~p_x ~p_y : stats =
  let p_x = Policy.project p_x ~attrs in
  let p_y = Policy.project p_y ~attrs in
  if bag then compute_bag vocab ~p_x ~p_y else compute ~uncovered vocab ~p_x ~p_y

(* Definition 10. *)
let complete vocab ~p_x ~p_y =
  let range_x = Range.of_policy vocab p_x in
  let range_y = Range.of_policy vocab p_y in
  Range.subset range_y range_x

let pp_stats ppf s =
  Fmt.pf ppf "coverage = %d/%d = %.0f%%" s.overlap s.denominator (100. *. s.coverage)

(* Degraded-mode qualifier.  A measurement over a complete P_AL is [Exact];
   one computed from a partial trail (sites skipped, records quarantined)
   is only a statement about the entries that arrived, so it is labelled
   [Lower_bound] with the completeness fraction of the window it was
   computed from.  A lower bound must never drive pruning decisions: a
   pattern can look "already covered" only because its counter-evidence is
   missing. *)
type qualifier =
  | Exact
  | Lower_bound of float (* completeness of the audit window, in [0, 1) *)

type qualified = {
  stats : stats;
  qualifier : qualifier;
}

(* [verified:false] means the trail itself is suspect — typically a crash
   recovery dropped an unverifiable WAL tail — so even a nominally complete
   window only bounds coverage from below. *)
let qualify ?(verified = true) ~completeness stats =
  if verified && completeness >= 1.0 then { stats; qualifier = Exact }
  else { stats; qualifier = Lower_bound (Float.min completeness 1.0) }

let is_exact = function { qualifier = Exact; _ } -> true | _ -> false

let pp_qualifier ppf = function
  | Exact -> Fmt.string ppf "exact"
  | Lower_bound c -> Fmt.pf ppf "lower bound (completeness %.1f%%)" (100. *. c)

let pp_qualified ppf q =
  match q.qualifier with
  | Exact -> pp_stats ppf q.stats
  | Lower_bound c ->
    Fmt.pf ppf "coverage >= %d/%d = %.0f%% (partial trail, completeness %.1f%%)"
      q.stats.overlap q.stats.denominator (100. *. q.stats.coverage) (100. *. c)
