(** Range (Definition 8): the set of all ground rules derivable from a
    policy under the vocabulary.

    Equivalent ground rules of equal cardinality are syntactically equal
    after canonicalisation, so the Definition 6 intersection of Algorithm 1
    reduces to structural set operations — here performed on a hash set
    keyed by the rules' precomputed hashes.  Ranges are observably
    immutable: every operation returns a fresh value.

    {!Range_reference} keeps the seed's [Set]-based implementation as the
    differential-testing oracle. *)

type t

val empty : t
val of_rules : Vocabulary.Vocab.t -> Rule.t list -> t
val of_policy : Vocabulary.Vocab.t -> Policy.t -> t

val cardinality : t -> int
(** #Range of Definition 8. *)

val mem : Rule.t -> t -> bool
(** Membership of a (canonical, ground) rule.  O(1). *)

val inter : t -> t -> t
val diff : t -> t -> t
val union : t -> t -> t
val subset : t -> t -> bool

val elements : t -> Rule.t list
(** Sorted by {!Rule.compare} (the seed Set's order), so listings are
    deterministic. *)

val is_empty : t -> bool

val fold : (Rule.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over the ground rules in unspecified order. *)

val covers : Vocabulary.Vocab.t -> t -> Rule.t -> bool
(** Every ground instance of the rule lies in the range. *)

val intersects : Vocabulary.Vocab.t -> t -> Rule.t -> bool
(** Some ground instance of the rule lies in the range. *)

val count_ground_rules : ?within:t -> Vocabulary.Vocab.t -> Rule.t list -> int * int
(** One streaming pass over the ground rules of [rules]:
    [(distinct, overlap)] where [distinct] is the number of distinct ground
    rules and [overlap] how many of them lie inside [?within] (0 when
    [within] is omitted).  Nothing is materialised beyond a scratch dedup
    table — this is Algorithm 1's denominator and numerator in one sweep,
    used by {!Coverage.compute} when the uncovered listing is not
    requested. *)

val cardinality_of_rules : ?within:t -> Vocabulary.Vocab.t -> Rule.t list -> int
(** [cardinality_of_rules vocab rules] is
    [cardinality (of_rules vocab rules)] without materialising the range;
    with [?within] it counts only the ground rules that lie inside that
    range (the Algorithm 1 numerator). *)

val pp : Format.formatter -> t -> unit
